"""Kernel-dispatch smoke benchmarks: the seam must be free, `fused` fast.

Two contracts from the kernel-layer refactor:

* **dispatch is cheap** — routing a kernel through the module-level
  dispatcher (thread-state lookup + collector truthiness check) costs
  <5% over calling the backend method directly;
* **`fused` earns its keep** — on the paper model's eval forward
  (packed InferenceSession plan) the fused backend is ≥1.2× the
  reference backend.

Wall-clock asserts use best-of-N minima, which are robust to scheduler
noise on shared CI runners.
"""

import time

import numpy as np

from _artifacts import record_bench
from repro import kernels
from repro.models import build_model
from repro.runtime import InferenceSession

RNG = np.random.default_rng(0)


def _best_of(fn, repeats=7, inner=3):
    """Minimum wall-clock seconds of *inner* back-to-back calls."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        for _ in range(inner):
            fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_dispatch_overhead_under_5_percent():
    """Module-level kernels.matmul vs the backend method, same arrays.

    256x256 GEMMs take long enough that per-call Python overhead is a
    small fraction; the dispatcher may add at most 5% on top of the
    direct call (measured generously: best-of-N of batched calls).
    """
    a = RNG.normal(size=(256, 256)).astype(np.float32)
    b = RNG.normal(size=(256, 256)).astype(np.float32)
    backend = kernels.get_backend("reference")
    direct = _best_of(lambda: backend.matmul(a, b), repeats=15, inner=20)
    with kernels.use_backend("reference"):
        dispatched = _best_of(lambda: kernels.matmul(a, b), repeats=15, inner=20)
    overhead = dispatched / direct - 1.0
    assert overhead < 0.05, f"dispatch overhead {overhead:.1%} (budget 5%)"


def test_fused_beats_reference_on_odenet_eval_forward():
    """`fused` ≥ 1.2x `reference` on the packed ODENet eval forward."""
    model = build_model("odenet", profile="tiny", inference=True)
    session = InferenceSession(model)
    x = RNG.standard_normal((8, 3, 32, 32)).astype(np.float32)

    def run_with(backend):
        with kernels.use_backend(backend):
            session.predict_batch(x)  # warm-up (fused workspace fill)
            return _best_of(lambda: session.predict_batch(x))

    ref_s = run_with("reference")
    fused_s = run_with("fused")
    speedup = ref_s / fused_s
    record_bench("kernel_dispatch", {
        "model": "odenet",
        "batch": int(x.shape[0]),
        "reference_ms": ref_s * 1e3,
        "fused_ms": fused_s * 1e3,
        "speedup": speedup,
        "required_speedup": 1.2,
    })
    assert speedup >= 1.2, f"fused speedup {speedup:.2f}x (need >=1.2x)"


def test_fused_parity_on_benchmark_model():
    """The speed claim only counts if outputs still agree (<=1e-6 rel)."""
    model = build_model("odenet", profile="tiny", inference=True)
    session = InferenceSession(model)
    x = RNG.standard_normal((4, 3, 32, 32)).astype(np.float32)
    with kernels.use_backend("reference"):
        ref = session.predict_batch(x)
    with kernels.use_backend("fused"):
        fused = session.predict_batch(x)
    scale = max(1.0, float(np.abs(ref).max()))
    assert float(np.abs(ref - fused).max()) <= 1e-6 * scale
