"""Micro-benchmarks of the numerical engine's hot paths.

These are true pytest-benchmark timings (not paper tables): conv2d via
im2col GEMM, the MHSA forward, ODE-block integration and the bit-exact
fixed-point matmul — the kernels every experiment above is built on.
"""

import numpy as np
import pytest

from repro import nn, ode
from repro.nn import functional
from repro.fixedpoint import QFormat, fixed_matmul
from repro.tensor import Tensor, no_grad

RNG = np.random.default_rng(0)


def test_conv2d_forward(benchmark):
    x = Tensor(RNG.normal(size=(8, 32, 24, 24)).astype(np.float32))
    w = Tensor(RNG.normal(size=(64, 32, 3, 3)).astype(np.float32))

    def run():
        with no_grad():
            return x.conv2d(w, padding=(1, 1))

    out = benchmark(run)
    assert out.shape == (8, 64, 24, 24)


def test_conv2d_backward(benchmark):
    x = Tensor(
        RNG.normal(size=(4, 16, 16, 16)).astype(np.float32), requires_grad=True
    )
    w = Tensor(RNG.normal(size=(32, 16, 3, 3)).astype(np.float32), requires_grad=True)

    def run():
        x.grad = None
        w.grad = None
        x.conv2d(w, padding=(1, 1)).sum().backward()
        return x.grad

    g = benchmark(run)
    assert g.shape == x.shape


def test_mhsa_forward_512(benchmark):
    """The BoTNet MHSA geometry the paper accelerates."""
    m = nn.MHSA2d(512, 3, 3, heads=4, attention_activation="relu",
                  out_layernorm=True, rng=RNG)
    x = RNG.normal(size=(1, 512, 3, 3)).astype(np.float32)
    out = benchmark(functional.mhsa2d_eval, m, x)
    assert out.shape == x.shape


def test_mhsa_forward_64(benchmark):
    """The proposed model's (64, 6, 6) geometry."""
    m = nn.MHSA2d(64, 6, 6, heads=4, attention_activation="relu",
                  out_layernorm=True, rng=RNG)
    x = RNG.normal(size=(1, 64, 6, 6)).astype(np.float32)
    out = benchmark(functional.mhsa2d_eval, m, x)
    assert out.shape == x.shape


def test_ode_block_euler_10_steps(benchmark):
    func = ode.ConvODEFunc(64, conv="dsc", rng=RNG)
    block = ode.ODEBlock(func, solver="euler", steps=10)
    block.eval()
    x = Tensor(RNG.normal(size=(1, 64, 6, 6)).astype(np.float32))

    def run():
        with no_grad():
            return block(x)

    out = benchmark(run)
    assert out.shape == (1, 64, 6, 6)


def test_fixed_matmul_512(benchmark):
    f = QFormat(32, 16)
    p = QFormat(24, 8)
    a = f.quantize(RNG.normal(size=(9, 512)))
    b = p.quantize(RNG.normal(size=(512, 512)))
    out = benchmark(fixed_matmul, a, f, b, p, f)
    assert out.shape == (9, 512)


def test_training_step_tiny_proposed(benchmark):
    from repro.models import build_model
    from repro.train import SGD, CrossEntropyLoss

    model = build_model("ode_botnet", profile="tiny")
    opt = SGD(model.parameters(), lr=0.01)
    loss_fn = CrossEntropyLoss()
    x = Tensor(RNG.normal(size=(8, 3, 32, 32)).astype(np.float32))
    y = RNG.integers(0, 10, size=8)

    def step():
        opt.zero_grad()
        loss = loss_fn(model(x), y)
        loss.backward()
        opt.step()
        return loss.item()

    loss = benchmark(step)
    assert np.isfinite(loss)
