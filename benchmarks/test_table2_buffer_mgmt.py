"""Table II: FPGA resources before/after shared-weight-buffer management."""

from conftest import show

from repro.experiments import format_table, table2_buffer_management


def test_table2_buffer_management(benchmark):
    rows = benchmark.pedantic(table2_buffer_management, rounds=3, iterations=1)
    show(
        "Table II — buffer management (Sec. V-B2)",
        format_table(
            ["config", "BRAM", "util", "DSP", "FF", "LUT", "paper BRAM"],
            [[r["config"], r["bram"], f"{r['bram_util']:.0%}", r["dsp"],
              r["ff"], r["lut"], r["paper_bram"]] for r in rows],
        ),
    )
    before, after = rows
    # The paper's crossover: naive > 100% of BRAM, shared buffer fits.
    assert before["bram_util"] > 1.0
    assert after["bram_util"] < 1.0
    assert after["fits"]
    # The saving is exactly two weight buffers' worth (~60% here).
    assert after["bram"] < 0.5 * before["bram"]
    # DSP unchanged by buffer planning
    assert before["dsp"] == after["dsp"]
