"""Table V: accuracy of the proposed and counterpart models.

Runs the five models with the paper's training recipe on the SynthSTL
surrogate at the ``tiny`` profile (see DESIGN.md for the substitution).
Reproduction target is the *ordering*: hybrid/CNN models >> ViT at
small sample counts, hybrids competitive with their backbones.
"""

from conftest import show

from repro.experiments import format_table, table5_accuracy

EPOCHS = 10
N_TRAIN = 40
N_TEST = 20


def _run():
    return table5_accuracy(
        profile="tiny", epochs=EPOCHS, n_train_per_class=N_TRAIN,
        n_test_per_class=N_TEST,
    )


def test_table5_accuracy(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    show(
        f"Table V — accuracy (tiny profile, {EPOCHS} epochs, "
        f"{N_TRAIN}/class SynthSTL)",
        format_table(
            ["model", "best acc %", "final acc %", "paper acc % (STL10)"],
            [[r["model"], f"{r['accuracy']:.1f}", f"{r['final_accuracy']:.1f}",
              r["paper_accuracy"]] for r in rows],
        ),
    )
    by = {r["model"]: r["accuracy"] for r in rows}
    # The paper's central Table V finding: pure attention (ViT) clearly
    # underperforms every convolution-based model on small data.
    for conv_model in ("resnet50", "botnet50", "odenet", "ode_botnet"):
        assert by[conv_model] > by["vit_base"], conv_model
    # The hybrids stay within a few points of their backbones despite
    # far fewer parameters (paper: +2.4 / +0.2 points).
    assert by["ode_botnet"] > by["odenet"] - 10
    assert by["botnet50"] > by["resnet50"] - 10
