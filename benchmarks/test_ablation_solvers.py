"""Ablation: ODE solver choice at fixed parameter count.

DESIGN.md ablation #1 — the paper fixes Euler (Eq. 14); here we train
the proposed model with higher-order solvers at the same parameter
budget and compare accuracy and epoch time.
"""

from conftest import show

from repro.experiments import format_table
from repro.experiments.accuracy import train_one

SOLVERS = ("euler", "heun", "rk4")


def _run():
    rows = []
    for solver in SOLVERS:
        model, hist = train_one(
            "ode_botnet", profile="tiny", epochs=5, n_train_per_class=30,
            seed=0, augment=False, solver=solver,
        )
        rows.append(
            {
                "solver": solver,
                "accuracy": hist.best()[1] * 100,
                "epoch_s": sum(hist.epoch_seconds) / len(hist.epoch_seconds),
                "params": model.num_parameters(),
            }
        )
    return rows


def test_ablation_solvers(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    show(
        "Ablation — ODE solver (5 epochs, tiny)",
        format_table(
            ["solver", "best acc %", "mean epoch s", "params"],
            [[r["solver"], f"{r['accuracy']:.1f}", f"{r['epoch_s']:.2f}",
              r["params"]] for r in rows],
        ),
    )
    by = {r["solver"]: r for r in rows}
    # identical parameter counts: the solver only changes compute
    assert len({r["params"] for r in rows}) == 1
    # cost ordering: rk4 needs 4 function evals/step vs euler's 1
    assert by["rk4"]["epoch_s"] > by["euler"]["epoch_s"]
    # all solvers train the task to well above chance
    assert all(r["accuracy"] > 30 for r in rows)
