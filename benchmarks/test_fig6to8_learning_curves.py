"""Figs 6-8: test accuracy vs epoch for BoTNet / proposed / ViT.

The distinguishing feature the paper calls out is that the curves are
*not* monotone: the cosine-annealing-warm-restart schedule produces a
visible perturbation at each restart (epoch 10 with T_0 = 10).
"""

import numpy as np
from conftest import show

from repro.experiments import learning_curves

EPOCHS = 14  # past the first warm restart at epoch 10


def _run():
    return learning_curves(
        models=("botnet50", "ode_botnet", "vit_base"),
        profile="tiny", epochs=EPOCHS, n_train_per_class=40,
        n_test_per_class=20,
    )


def test_fig6to8_learning_curves(benchmark):
    curves = benchmark.pedantic(_run, rounds=1, iterations=1)
    lines = []
    for name, c in curves.items():
        series = " ".join(f"{a:5.1f}" for a in c["test_accuracy"])
        lines.append(f"{name:12s} {series}")
    show(f"Figs 6-8 — test accuracy per epoch (tiny, {EPOCHS} epochs)",
         "\n".join(lines))

    for name, c in curves.items():
        acc = np.array(c["test_accuracy"])
        assert len(acc) == EPOCHS
        # every model must end far above chance (10 classes -> 10%)
        assert acc[-1] > 25, name
        # learning curves converge upward overall
        assert acc[-3:].mean() > acc[:3].mean(), name

    # Fig 6/7 vs Fig 8: the hybrids dominate ViT through training
    assert (
        np.mean(curves["ode_botnet"]["test_accuracy"][-5:])
        > np.mean(curves["vit_base"]["test_accuracy"][-5:])
    )
    # the LR schedule actually restarted (epoch 10 LR jumps back up)
    lrs = curves["ode_botnet"]["lr"]
    assert lrs[10] > lrs[9]
