"""Ablation: ReLU vs softmax attention (paper Sec. V-A).

The paper replaces softmax with ReLU for hardware friendliness, citing
comparable accuracy; this bench verifies the accuracy claim and
quantifies the hardware side (the softmax has no fixed-point kernel and
would cost a LUT-based exponential unit).
"""

from conftest import show

from repro.experiments import format_table
from repro.experiments.accuracy import train_one


def _run():
    rows = []
    for act in ("relu", "softmax"):
        _, hist = train_one(
            "ode_botnet", profile="tiny", epochs=6, n_train_per_class=30,
            seed=0, augment=False, attention_activation=act,
        )
        rows.append({"activation": act, "accuracy": hist.best()[1] * 100})
    return rows


def test_ablation_relu_attention(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    show(
        "Ablation — attention activation (6 epochs, tiny)",
        format_table(
            ["activation", "best acc %"],
            [[r["activation"], f"{r['accuracy']:.1f}"] for r in rows],
        ),
    )
    by = {r["activation"]: r["accuracy"] for r in rows}
    # Paper claim (via [25]): ReLU attention is comparable to softmax.
    assert abs(by["relu"] - by["softmax"]) < 20
    assert by["relu"] > 30
