"""Paper Sec. II-A claim (via [8]): adding MHSA improves robustness.

Trains the ODENet backbone and the proposed hybrid identically, then
compares accuracy degradation under input noise/occlusion and the
flatness of the loss around the found minimum.
"""

import numpy as np
from conftest import show

from repro.data import DataLoader, SynthSTL
from repro.experiments import format_table
from repro.experiments.accuracy import train_one
from repro.experiments.robustness import (
    loss_flatness,
    noise_robustness_curve,
    occlusion_robustness_curve,
)

SIGMAS = (0.0, 0.1, 0.2, 0.4)
FRACTIONS = (0.0, 0.2, 0.4)
EPSILONS = (0.0, 0.1, 0.3)


def _run():
    test = SynthSTL("test", size=32, n_per_class=20, seed=0)
    images, labels = next(iter(DataLoader(test, batch_size=len(test))))
    out = {}
    for name in ("odenet", "ode_botnet"):
        model, _ = train_one(
            name, profile="tiny", epochs=8, n_train_per_class=40, seed=0,
            augment=False,
        )
        model.eval()
        out[name] = {
            "noise": noise_robustness_curve(model, images, labels, sigmas=SIGMAS),
            "occlusion": occlusion_robustness_curve(
                model, images, labels, fractions=FRACTIONS
            ),
            "flatness": loss_flatness(
                model, images, labels, epsilons=EPSILONS, n_directions=4
            ),
        }
    return out


def test_robustness(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    rows = []
    for name, r in results.items():
        rows.append(
            [name]
            + [f"{p['accuracy']:.0f}" for p in r["noise"]]
            + [f"{p['accuracy']:.0f}" for p in r["occlusion"][1:]]
            + [f"{p['loss']:.2f}" for p in r["flatness"]]
        )
    show(
        "Robustness: noise acc % (σ=" + ",".join(map(str, SIGMAS))
        + "), occlusion acc % (f=" + ",".join(map(str, FRACTIONS[1:]))
        + "), perturbed loss (ε=" + ",".join(map(str, EPSILONS)) + ")",
        format_table(
            ["model"]
            + [f"σ={s}" for s in SIGMAS]
            + [f"occ={f}" for f in FRACTIONS[1:]]
            + [f"ε={e}" for e in EPSILONS],
            rows,
        ),
    )
    for name, r in results.items():
        noise_accs = [p["accuracy"] for p in r["noise"]]
        # degradation is graceful, not a cliff at mild noise
        assert noise_accs[1] > noise_accs[0] - 30, name
        # heavy corruption hurts (sanity that the probe works)
        assert noise_accs[-1] < noise_accs[0] + 1, name
        losses = [p["loss"] for p in r["flatness"]]
        assert losses[-1] >= losses[0], name
    # both models trained successfully on clean data
    assert results["ode_botnet"]["noise"][0]["accuracy"] > 70
    assert results["odenet"]["noise"][0]["accuracy"] > 70
