"""Figs 9-10: mean/max value difference between software and FPGA
executions at the final FC layer input, per fixed-point format."""

from conftest import show

from repro.experiments import fig9_10_numeric_error, format_table


def test_fig9to10_numeric_error(benchmark, trained_tiny_proposed):
    rows = benchmark.pedantic(
        lambda: fig9_10_numeric_error(
            model=trained_tiny_proposed, profile="tiny", n_per_class=10
        ),
        rounds=1,
        iterations=1,
    )
    show(
        "Figs 9-10 — |FPGA - SW| at the final FC input",
        format_table(
            ["format", "mean abs diff (Fig 9)", "max abs diff (Fig 10)"],
            [[r["format"], f"{r['mean_abs_diff']:.3e}", f"{r['max_abs_diff']:.3e}"]
             for r in rows],
        ),
    )
    means = [r["mean_abs_diff"] for r in rows]
    maxes = [r["max_abs_diff"] for r in rows]
    # Paper shape: error grows monotonically as the format narrows,
    # spanning orders of magnitude between 32(16)-24(8) and 16(8)-12(4).
    assert means == sorted(means)
    assert maxes[-1] > 10 * maxes[0]
    assert all(mx >= mn for mx, mn in zip(maxes, means))
