"""The compiled backend's speed gate: ≥1.3× fused on the packed forward.

The ``compiled`` backend exists to beat ``fused`` — same numerics
(≤1e-6 of ``reference``), better schedule: BN folded into conv weights,
the Euler step body running out of one preallocated arena, per-machine
autotuned conv strategies.  This bench times the packed eval forward
(the serving hot path) under both backends for each compilable registry
model, asserts the headline ≥1.3× claim, prints the table and persists
it as ``BENCH_compile_speedup.json`` for CI artifact upload.
"""

import time

import numpy as np
import pytest

from _artifacts import record_bench
from conftest import show
from repro import kernels
from repro.compile import autotune
from repro.models import build_model
from repro.runtime import InferenceSession, PackedODENet, SessionConfig

RNG = np.random.default_rng(0)

MODELS = ("odenet", "ode_botnet")
BATCH = 8
REQUIRED_SPEEDUP = 1.3


def _best_of(fn, repeats=7, inner=5):
    """Best-of-*repeats* mean-of-*inner* wall seconds per call."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        for _ in range(inner):
            fn()
        best = min(best, (time.perf_counter() - t0) / inner)
    return best


@pytest.fixture(scope="module")
def compile_speedup_rows():
    """Autotune, time fused vs compiled per model, persist the artifact."""
    x = RNG.standard_normal((BATCH, 3, 32, 32)).astype(np.float32)
    rows = []
    for name in MODELS:
        model = build_model(name, profile="tiny", inference=True)
        # Tune + warm the on-disk schedule cache so the compiled
        # backend below picks the tuned schedule up transparently.
        schedule, report = autotune(PackedODENet(model), x, save=True)

        timings = {}
        for backend in ("fused", "compiled"):
            session = InferenceSession(
                model, config=SessionConfig(backend=backend)
            )
            session.predict_batch(x)  # warm: workspaces / plan binding
            timings[backend] = _best_of(
                lambda s=session: s.predict_batch(x)
            )
        rows.append({
            "model": name,
            "batch": BATCH,
            "fused_ms": timings["fused"] * 1e3,
            "compiled_ms": timings["compiled"] * 1e3,
            "speedup": timings["fused"] / timings["compiled"],
            "schedule": schedule,
            "autotune_best_ms": report["best_ms"],
        })

    body = "\n".join(
        f"{r['model']:12s} fused {r['fused_ms']:7.3f} ms   "
        f"compiled {r['compiled_ms']:7.3f} ms   "
        f"speedup {r['speedup']:.2f}x  (need >={REQUIRED_SPEEDUP}x)"
        for r in rows
    )
    show("compiled vs fused — packed eval forward", body)
    record_bench(
        "compile_speedup",
        {"required_speedup": REQUIRED_SPEEDUP, "rows": rows},
    )
    return rows


@pytest.mark.parametrize("name", MODELS)
def test_compiled_beats_fused(compile_speedup_rows, name):
    """`compiled` ≥ 1.3x `fused` on the packed eval forward."""
    row = next(r for r in compile_speedup_rows if r["model"] == name)
    assert row["speedup"] >= REQUIRED_SPEEDUP, (
        f"compiled speedup {row['speedup']:.2f}x over fused on {name} "
        f"(need >={REQUIRED_SPEEDUP}x)"
    )


@pytest.mark.parametrize("name", MODELS)
def test_compiled_parity_with_reference(name):
    """The speed claim only counts if outputs agree (≤1e-6 of reference)."""
    model = build_model(name, profile="tiny", inference=True)
    x = RNG.standard_normal((4, 3, 32, 32)).astype(np.float32)
    session = InferenceSession(model)
    with kernels.use_backend("reference"):
        ref = session.predict_batch(x)
    with kernels.use_backend("compiled"):
        out = session.predict_batch(x)
    np.testing.assert_allclose(out, ref, rtol=0, atol=1e-6)
