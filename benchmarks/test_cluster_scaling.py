"""Cluster benchmark: 1 vs 2 workers under deterministic load.

The cluster analogue of ``test_serve_throughput``.  Real worker
*subprocesses* are launched through the CLI (``python -m
repro.cluster.worker --listen 127.0.0.1:0``), discovered through the
``CLUSTER_WORKER_READY`` readiness line, and driven over loopback TCP
by a parent-side :class:`~repro.serve.Server` whose pool is built
entirely from :class:`~repro.cluster.RemoteReplica` slots.

Three claims, in decreasing strictness:

1. **Correctness is unconditional** — every leg completes with zero
   hung futures and zero unexpected errors, and each worker's hello
   frame proves its replicas map **one** shared weight set (the
   ``RPROWTS1`` versioned header from ``--shared-weights``).  Asserted
   on every machine.
2. **Numbers are always produced** — throughput for 1 and 2 workers is
   printed and persisted to ``BENCH_cluster_scaling.json`` whether or
   not the gate below is active.
3. **Workers scale** — two single-replica process-mode workers sustain
   >= 1.6x the completed throughput of one.  Only asserted with >= 3
   usable cores (two worker processes plus the parent's serving
   threads); below that the artifact records why the gate was off.

Runs standalone:

    pytest benchmarks/test_cluster_scaling.py -q -s
"""

import os
import subprocess
import sys

import numpy as np
import pytest

from repro.cluster import WorkerClient, connect_worker, parse_address
from repro.cluster.shmem import STORE_MAGIC, STORE_SCHEMA
from repro.serve import (
    ReplicaPool,
    Server,
    arrival_offsets,
    calibrate_rate,
    run_load,
)

from _artifacts import record_bench
from conftest import show

PROFILE = "tiny"
MODEL = "ode_botnet"
DURATION_S = 2.0
SEED = 0

CORES = len(os.sched_getaffinity(0))
# each leg runs this many single-replica process-mode workers; the
# 2-worker leg needs a core per worker process plus one for the
# parent's serving threads before a hard 1.6x gate is reliable
GATE_SCALING = CORES >= 3
GATE_SKIP_REASON = (
    None if GATE_SCALING
    else f"only {CORES} usable core(s); the 1.6x gate needs >= 3"
)


def _samples(n=32):
    rng = np.random.default_rng(SEED)
    return rng.standard_normal((n, 3, 32, 32)).astype(np.float32)


def _launch_worker():
    """One worker subprocess; returns ``(proc, (host, port))``."""
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cluster.worker",
         "--listen", "127.0.0.1:0", "--replicas", "1",
         "--mode", "process", "--shared-weights",
         "--model", MODEL, "--profile", PROFILE, "--seed", str(SEED)],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        env=env,
    )
    line = proc.stdout.readline().strip()
    if not line.startswith("CLUSTER_WORKER_READY "):
        proc.kill()
        raise RuntimeError(f"worker did not become ready: {line!r}")
    return proc, parse_address(line.split()[1])


def _stop_worker(proc):
    proc.terminate()
    try:
        proc.wait(timeout=10)
    except subprocess.TimeoutExpired:
        proc.kill()
        proc.wait(timeout=10)


def _serve_remote(addresses, rate_hz):
    """A server whose pool is purely remote slots; replay one schedule."""
    replicas = []
    for address in addresses:
        replicas.extend(connect_worker(address, timeout_s=60))
    server = Server(
        ReplicaPool(replicas), queue_capacity=32, max_batch_size=8,
        max_wait_ms=2.0, shed_policy="reject",
    )
    try:
        offsets = arrival_offsets(rate_hz, DURATION_S, seed=SEED)
        report = run_load(server, _samples(), offsets, seed=SEED)
        queue_snap = server.metrics()["queue"]
    finally:
        server.close()
    return report, queue_snap


def test_cluster_worker_scaling():
    workers = []
    try:
        for _ in range(2):
            workers.append(_launch_worker())

        # one mapped weight copy per host, proven by the versioned
        # header each worker advertises in its hello frame
        for _proc, address in workers:
            client = WorkerClient(address, connect_timeout_s=60)
            try:
                header = client.info["shared_weights"]
                assert header is not None, "worker is not sharing weights"
                assert header["magic"] == STORE_MAGIC.decode()
                assert header["schema"] == STORE_SCHEMA
                assert header["arrays"] > 0
                assert header["weights_version"] >= 1
            finally:
                client.close()

        addresses = [address for _proc, address in workers]
        # calibrate one worker's capacity directly over the wire
        calib = connect_worker(addresses[0], timeout_s=60)
        try:
            pool = ReplicaPool(calib)
            with Server(pool, max_batch_size=8) as server:
                per_worker = calibrate_rate(server, _samples(1)[0],
                                            seed=SEED)
        finally:
            pass  # server.close() closed the replicas
        rate = 1.8 * per_worker

        single, single_q = _serve_remote(addresses[:1], rate)
        multi, multi_q = _serve_remote(addresses, rate)
    finally:
        for proc, _address in workers:
            _stop_worker(proc)

    for leg, report, queue_snap in (
            ("1 worker", single, single_q),
            ("2 workers", multi, multi_q)):
        assert report.hung == 0, f"{leg}: hung futures"
        assert report.errors == 0, f"{leg}: {report.error_examples}"
        assert report.completed > 0, f"{leg}: nothing completed"
        assert queue_snap["high_water"] <= 32, f"{leg}: unbounded queue"

    scaling = multi.achieved_rate / single.achieved_rate
    show(
        f"Cluster worker scaling (process-mode workers over loopback "
        f"TCP, {CORES} core(s))",
        f"offered rate       : {rate:8.1f} samples/s "
        f"(1.8x calibrated single-worker capacity)\n"
        f"1 worker           : {single.achieved_rate:8.1f}/s  "
        f"p95 {single.latency_percentile(95):7.1f} ms  "
        f"(shed {single.shed})\n"
        f"2 workers          : {multi.achieved_rate:8.1f}/s  "
        f"p95 {multi.latency_percentile(95):7.1f} ms  "
        f"(shed {multi.shed})\n"
        f"scaling            : {scaling:.2f}x "
        f"(gate: >= 1.6x, "
        f"{'ON' if GATE_SCALING else 'OFF — needs >= 3 cores'})",
    )
    record_bench("cluster_scaling", {
        "model": MODEL,
        "profile": PROFILE,
        "workers": 2,
        "replicas_per_worker": 1,
        "worker_mode": "process",
        "shared_weights": True,
        "offered_rate_hz": rate,
        "single_worker_rate_hz": single.achieved_rate,
        "multi_worker_rate_hz": multi.achieved_rate,
        "scaling": scaling,
        "gate_active": GATE_SCALING,
        "required_scaling": 1.6,
    }, gate_skip_reason=GATE_SKIP_REASON)

    if not GATE_SCALING:
        pytest.skip(
            f"only {CORES} usable core(s): two worker processes plus "
            f"the parent's serving threads need >= 3 cores before a "
            f"hard 1.6x scaling gate is reliable (numbers printed and "
            f"recorded above)"
        )
    assert scaling >= 1.6, (
        f"2 workers only {scaling:.2f}x one worker on {CORES} cores "
        f"(expected >= 1.6x)"
    )
