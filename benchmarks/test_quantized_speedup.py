"""The quantized backend's speed gate: ≥5× the scalar fixed-point path.

The ``quantized`` backend exists to make full-network fixed-point
inference *fast enough to serve*: the scalar reference path
(``QuantizedODENetExecutor.run`` under the ``reference`` backend) walks
every integer GEMM in pure numpy loops over int64 raws, while the
scale-folded :class:`~repro.fixedpoint.QuantizedPlan` reroutes the same
integers through float BLAS wherever the accumulator provably fits the
mantissa.  The claim is only interesting because the outputs are
**bit-identical** — this bench asserts identity first, then times both
paths at the paper deployment point (``ode_botnet`` at the paper
profile, 16(8)-12(4), batch 8), asserts the headline ≥5×, prints the
table and persists ``BENCH_quantized_speedup.json`` for CI.
"""

import time

import numpy as np
import pytest

from _artifacts import record_bench
from conftest import show
from repro import kernels
from repro.fixedpoint import (
    QuantizedODENetExecutor,
    QuantizedPlan,
    parse_format_pair,
)
from repro.models import build_model
from repro.models.registry import PROFILES

RNG = np.random.default_rng(0)

MODEL = "ode_botnet"
PROFILE = "paper"
FORMAT = "16(8)-12(4)"
BATCH = 8
REQUIRED_SPEEDUP = 5.0


def _best_of(fn, repeats=3, inner=1):
    """Best-of-*repeats* mean-of-*inner* wall seconds per call."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        for _ in range(inner):
            fn()
        best = min(best, (time.perf_counter() - t0) / inner)
    return best


@pytest.fixture(scope="module")
def quantized_speedup_row():
    """Build, verify bit-identity, time both paths, persist the artifact."""
    model = build_model(MODEL, profile=PROFILE, inference=True)
    ffmt, pfmt = parse_format_pair(FORMAT)
    executor = QuantizedODENetExecutor(model, ffmt, pfmt)
    plan = QuantizedPlan.from_executor(executor)

    size = PROFILES[PROFILE]["input_size"]
    x = RNG.standard_normal((BATCH, 3, size, size)).astype(np.float32)

    with kernels.use_backend("reference"):
        ref = executor.run(x)
    fast = plan.run(x)
    np.testing.assert_array_equal(ref, fast)  # the claim's precondition

    def scalar():
        with kernels.use_backend("reference"):
            executor.run(x)

    plan.run(x)  # warm
    scalar_s = _best_of(scalar)
    plan_s = _best_of(lambda: plan.run(x), repeats=5, inner=3)
    return {
        "model": MODEL,
        "profile": PROFILE,
        "format": FORMAT,
        "batch": BATCH,
        "scalar_ms": scalar_s * 1e3,
        "plan_ms": plan_s * 1e3,
        "speedup": scalar_s / plan_s,
        "bit_identical": True,
    }


def test_quantized_plan_beats_scalar_reference(quantized_speedup_row):
    """`quantized` plan ≥ 5x the scalar fixed-point reference path."""
    row = quantized_speedup_row
    show(
        "quantized plan vs scalar fixed point — full-model forward",
        f"{row['model']} @ {row['profile']} {row['format']} "
        f"batch {row['batch']}\n"
        f"scalar {row['scalar_ms']:9.2f} ms   "
        f"plan {row['plan_ms']:7.2f} ms   "
        f"speedup {row['speedup']:.2f}x  (need >={REQUIRED_SPEEDUP}x)",
    )
    record_bench(
        "quantized_speedup",
        {"required_speedup": REQUIRED_SPEEDUP, "rows": [row]},
    )
    assert row["speedup"] >= REQUIRED_SPEEDUP, (
        f"quantized plan speedup {row['speedup']:.2f}x over the scalar "
        f"reference path (need >={REQUIRED_SPEEDUP}x)"
    )


def test_quantized_backend_alone_accelerates_executor():
    """Even without the plan, the executor under the quantized backend
    must beat its own scalar path — the seam reroute carries weight."""
    model = build_model(MODEL, profile="tiny", inference=True)
    ffmt, pfmt = parse_format_pair(FORMAT)
    executor = QuantizedODENetExecutor(model, ffmt, pfmt)
    x = RNG.standard_normal((BATCH, 3, 32, 32)).astype(np.float32)
    with kernels.use_backend("reference"):
        ref = executor.run(x)
        scalar_s = _best_of(lambda: executor.run(x))
    with kernels.use_backend("quantized"):
        out = executor.run(x)
        fast_s = _best_of(lambda: executor.run(x))
    np.testing.assert_array_equal(ref, out)
    assert fast_s < scalar_s
