"""Ablation: number of ODE integration steps C (the weight-reuse factor).

DESIGN.md ablation #2 — C controls effective depth at zero parameter
cost (paper Sec. III-B: C ResBlocks -> one ODEBlock run C times).
"""

from conftest import show

from repro.experiments import format_table
from repro.experiments.accuracy import train_one

STEP_COUNTS = (1, 2, 4, 8)


def _run():
    rows = []
    for steps in STEP_COUNTS:
        model, hist = train_one(
            "ode_botnet", profile="tiny", epochs=5, n_train_per_class=30,
            seed=0, augment=False, steps=steps,
        )
        rows.append(
            {
                "steps": steps,
                "accuracy": hist.best()[1] * 100,
                "epoch_s": sum(hist.epoch_seconds) / len(hist.epoch_seconds),
                "params": model.num_parameters(),
            }
        )
    return rows


def test_ablation_steps(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    show(
        "Ablation — integration steps C (5 epochs, tiny)",
        format_table(
            ["C", "best acc %", "mean epoch s", "params"],
            [[r["steps"], f"{r['accuracy']:.1f}", f"{r['epoch_s']:.2f}",
              r["params"]] for r in rows],
        ),
    )
    # the core compression property: params do not grow with C
    assert len({r["params"] for r in rows}) == 1
    # compute grows (roughly linearly) with C
    assert rows[-1]["epoch_s"] > rows[0]["epoch_s"]
    # the model learns at every depth
    assert all(r["accuracy"] > 30 for r in rows)
