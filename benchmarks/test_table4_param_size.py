"""Table IV: parameter size of the proposed and counterpart models."""

import pytest
from conftest import show

from repro.experiments import format_table, table4_param_size


def test_table4_param_size(benchmark):
    rows = benchmark.pedantic(table4_param_size, rounds=1, iterations=1)
    show(
        "Table IV — parameter size (paper profile)",
        format_table(
            ["model", "ours", "paper", "ratio", "reduction vs BoTNet50"],
            [[r["model"], r["params"], r["paper_params"],
              f"{r['params'] / r['paper_params']:.3f}",
              f"{r['reduction_vs_botnet']:.1%}"] for r in rows],
        ),
    )
    by = {r["model"]: r for r in rows}
    # ordering: ViT > ResNet50 > BoTNet50 >> ODENet > proposed
    assert (by["vit_base"]["params"] > by["resnet50"]["params"]
            > by["botnet50"]["params"] > by["odenet"]["params"]
            > by["ode_botnet"]["params"])
    # the 97.3% headline reduction
    assert by["ode_botnet"]["reduction_vs_botnet"] == pytest.approx(0.973, abs=0.01)
    # BoTNet's 19.7% reduction vs ResNet50
    resnet_reduction = 1 - by["botnet50"]["params"] / by["resnet50"]["params"]
    assert resnet_reduction == pytest.approx(0.197, abs=0.03)
    # absolute agreement
    for r in rows:
        assert r["params"] == pytest.approx(r["paper_params"], rel=0.15), r["model"]
