"""Table VIII extended: *full-network* fixed-point accuracy sweep.

The paper quantises only the MHSA block; this extension (its Sec. VII
future work) runs the entire proposed model in fixed point.  With the
whole network quantised, the sweep exhibits the paper's characteristic
collapse — flat at wide formats, a knee, then chance-level accuracy —
at formats narrow enough for our scaled model's activation range.
"""

from conftest import show

from repro.experiments import format_table
from repro.fixedpoint import full_model_quant_accuracy

FORMATS = (
    "32(16)-24(8)", "24(12)-20(6)", "20(10)-16(4)", "16(8)-12(4)",
    "8(4)-6(2)", "6(3)-6(2)", "6(3)-4(2)", "4(2)-4(2)",
)


def test_table8_full_model_quantization(benchmark, trained_tiny_proposed):
    from repro.data import DataLoader, SynthSTL

    test = SynthSTL("test", size=32, n_per_class=20, seed=0)
    images, labels = next(iter(DataLoader(test, batch_size=len(test))))

    rows = benchmark.pedantic(
        lambda: full_model_quant_accuracy(
            trained_tiny_proposed, images, labels, FORMATS
        ),
        rounds=1,
        iterations=1,
    )
    show(
        "Table VIII (extended) — full-network fixed-point accuracy",
        format_table(
            ["format (feature-param)", "accuracy %"],
            [[r["format"], f"{r['accuracy']:.1f}"] for r in rows],
        ),
    )
    by = {r["format"]: r["accuracy"] for r in rows}
    wide = by["32(16)-24(8)"]
    # flat across the paper's deployable formats
    assert abs(by["24(12)-20(6)"] - wide) < 3
    assert abs(by["16(8)-12(4)"] - wide) < 3
    # collapse at very narrow formats (chance is 10%)
    assert by["4(2)-4(2)"] < wide - 20
    # the knee is monotone-ish: narrowest <= knee <= wide
    assert by["4(2)-4(2)"] <= by["8(4)-6(2)"] + 5
