"""Table III: cycle counts of MHSA stages, original vs parallelized."""

import pytest
from conftest import show

from repro.experiments import format_table, table3_parallelization


def test_table3_parallelization(benchmark):
    rows = benchmark.pedantic(table3_parallelization, rounds=3, iterations=1)
    show(
        "Table III — parallelizing the computational bottleneck",
        format_table(
            ["stage", "orig cycles", "orig ns", "par cycles", "par ns",
             "paper orig", "paper par"],
            [[r["stage"], r["orig_cycles"], f"{r['orig_ns']:.3g}",
              r["par_cycles"], f"{r['par_ns']:.3g}",
              r["paper_orig"] or "-", r["paper_par"] or "-"] for r in rows],
        ),
    )
    by = {r["stage"]: r for r in rows}
    proj = by["XW^q, XW^k, XW^v (each)"]
    total = by["Total"]
    # the projections dominate the original schedule (~99% of time)
    assert 3 * proj["orig_cycles"] / total["orig_cycles"] > 0.97
    # ~127x stage speedup, ~52x overall (paper's headline numbers)
    assert proj["orig_cycles"] / proj["par_cycles"] == pytest.approx(127, rel=0.02)
    assert total["orig_cycles"] / total["par_cycles"] == pytest.approx(52, rel=0.03)
    # absolute totals agree with the paper's HLS report within 1%
    assert total["orig_cycles"] == pytest.approx(total["paper_orig"], rel=0.01)
    assert total["par_cycles"] == pytest.approx(total["paper_par"], rel=0.01)
