"""Smoke benchmark: the batched runtime vs per-sample graph forwards.

The inference runtime's pitch is throughput: one packed, graph-free
``predict_batch`` over N images should beat N single-image forwards that
each build an autograd graph.  This pins the claim at >= 2x on the tiny
proposed model — a deliberately loose bound so the smoke test passes on
any CI machine while still catching a runtime that silently regresses
to per-sample dispatch.

Runs standalone (no ``--benchmark-only`` needed):

    pytest benchmarks/test_runtime_throughput.py -q -s
"""

import time

import numpy as np

from repro.models import build_model
from repro.runtime import InferenceSession
from repro.tensor import Tensor

from _artifacts import record_bench
from conftest import show

N_SAMPLES = 32
REPEATS = 3


def _best_of(repeats, fn):
    """Best wall-clock of ``repeats`` runs (robust to CI noise)."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_predict_batch_at_least_2x_over_per_sample():
    rng = np.random.default_rng(0)
    x = rng.standard_normal((N_SAMPLES, 3, 32, 32)).astype(np.float32)

    model = build_model("ode_botnet", profile="tiny", seed=0)
    session = InferenceSession(
        build_model("ode_botnet", profile="tiny", seed=0, inference=True)
    )
    assert session.backend == "packed"

    def per_sample():
        # the pre-runtime idiom: one graph-building forward per image
        return [model(Tensor(x[i : i + 1])).data for i in range(N_SAMPLES)]

    def batched():
        return session.predict_batch(x)

    per_sample()  # warm-up (first-touch allocations, BLAS threads)
    batched()

    t_loop = _best_of(REPEATS, per_sample)
    t_batch = _best_of(REPEATS, batched)
    speedup = t_loop / t_batch

    show(
        "Runtime throughput smoke (tiny ode_botnet, 32 images)",
        f"per-sample graph forwards : {N_SAMPLES / t_loop:8.1f} img/s"
        f"  ({t_loop * 1e3:7.1f} ms)\n"
        f"InferenceSession batched  : {N_SAMPLES / t_batch:8.1f} img/s"
        f"  ({t_batch * 1e3:7.1f} ms)\n"
        f"speedup                   : {speedup:.1f}x (gate: >= 2x)",
    )
    record_bench("runtime_throughput", {
        "model": "ode_botnet",
        "n_samples": N_SAMPLES,
        "per_sample_ms": t_loop * 1e3,
        "batched_ms": t_batch * 1e3,
        "batched_img_per_s": N_SAMPLES / t_batch,
        "speedup": speedup,
        "required_speedup": 2.0,
    })

    assert speedup >= 2.0, (
        f"predict_batch only {speedup:.2f}x faster than per-sample "
        f"training-mode forwards (expected >= 2x)"
    )

    out = session.predict_batch(x)
    assert out.shape == (N_SAMPLES, 10)
    assert np.all(np.isfinite(out))
