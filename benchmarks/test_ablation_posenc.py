"""Ablation: position-encoding variant (paper Sec. III-A3 / V-A).

The paper chooses learnable *relative* encoding over absolute
(sinusoidal), citing [7]/[24]; this bench compares relative, absolute
and no encoding in the proposed model.
"""

from conftest import show

from repro.experiments import format_table
from repro.experiments.accuracy import train_one

VARIANTS = ("relative", "absolute", "none")


def _run():
    rows = []
    for pe in VARIANTS:
        model, hist = train_one(
            "ode_botnet", profile="tiny", epochs=6, n_train_per_class=30,
            seed=0, augment=False, pos_enc=pe,
        )
        rows.append(
            {
                "pos_enc": pe,
                "accuracy": hist.best()[1] * 100,
                "params": model.num_parameters(),
            }
        )
    return rows


def test_ablation_posenc(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    show(
        "Ablation — position encoding (6 epochs, tiny)",
        format_table(
            ["pos_enc", "best acc %", "params"],
            [[r["pos_enc"], f"{r['accuracy']:.1f}", r["params"]] for r in rows],
        ),
    )
    by = {r["pos_enc"]: r for r in rows}
    # relative encoding adds (learnable) parameters; absolute/none do not
    assert by["relative"]["params"] > by["absolute"]["params"]
    assert by["absolute"]["params"] == by["none"]["params"]
    # all variants learn
    assert all(r["accuracy"] > 30 for r in rows)
