"""Model-size vs accuracy frontier of the proposed architecture family.

The paper picks one operating point (C=10, channels 64-256, MHSA inner
64); this sweep varies the weight-reuse factor C and the stage widths
at tiny scale and charts the parameter/accuracy frontier — showing that
the Neural-ODE axis (C) buys depth for free while width is the actual
parameter knob.
"""

from conftest import show

from repro.experiments import format_table
from repro.experiments.accuracy import train_one

SWEEP = [
    # (label, overrides)
    ("C=1, width x1", dict(steps=1)),
    ("C=2, width x1", dict(steps=2)),
    ("C=4, width x1", dict(steps=4)),
    ("C=2, width x0.5", dict(steps=2, stage_channels=(4, 8, 16), mhsa_inner=8)),
    ("C=2, width x2", dict(steps=2, stage_channels=(16, 32, 64), mhsa_inner=32)),
]


def _run():
    rows = []
    for label, overrides in SWEEP:
        model, hist = train_one(
            "ode_botnet", profile="tiny", epochs=6, n_train_per_class=30,
            seed=0, augment=False, **overrides,
        )
        rows.append(
            {
                "config": label,
                "params": model.num_parameters(),
                "accuracy": hist.best()[1] * 100,
            }
        )
    return rows


def test_pareto_frontier(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    show(
        "Size/accuracy frontier of the ODE-BoTNet family (tiny, 6 epochs)",
        format_table(
            ["config", "params", "best acc %"],
            [[r["config"], r["params"], f"{r['accuracy']:.1f}"] for r in rows],
        ),
    )
    by = {r["config"]: r for r in rows}
    # the Neural-ODE axis: C does not change parameters
    assert (by["C=1, width x1"]["params"] == by["C=2, width x1"]["params"]
            == by["C=4, width x1"]["params"])
    # the width axis: parameters scale roughly quadratically
    assert by["C=2, width x2"]["params"] > 3 * by["C=2, width x1"]["params"]
    assert by["C=2, width x0.5"]["params"] < by["C=2, width x1"]["params"]
    # every configuration learns well above 10% chance
    assert all(r["accuracy"] > 30 for r in rows)
