"""Table I: FPGA resources, floating point vs fixed point (512ch, 3x3)."""

from conftest import show

from repro.experiments import format_table, table1_fixed_vs_float


def test_table1_fixed_vs_float(benchmark):
    rows = benchmark.pedantic(table1_fixed_vs_float, rounds=3, iterations=1)
    show(
        "Table I — resources, float vs fixed (naive buffers)",
        format_table(
            ["config", "BRAM", "DSP", "FF", "LUT",
             "paper BRAM", "paper DSP", "paper FF", "paper LUT"],
            [[r["config"], r["bram"], r["dsp"], r["ff"], r["lut"],
              r["paper_bram"], r["paper_dsp"], r["paper_ff"], r["paper_lut"]]
             for r in rows],
        ),
    )
    fl, fx = rows
    # Paper claim: fixed point cuts BRAM by ~53% of capacity and DSP by ~32%
    # of capacity; at minimum it must cut DSP >4x and reduce BRAM and FF.
    assert fx["dsp"] * 4 < fl["dsp"]
    assert fx["bram"] < fl["bram"]
    assert fx["ff"] < fl["ff"]
    # within 15% of the paper's absolute numbers
    for r in rows:
        assert abs(r["bram"] - r["paper_bram"]) / r["paper_bram"] < 0.15
        assert abs(r["dsp"] - r["paper_dsp"]) / r["paper_dsp"] < 0.15
