"""Sec. VI-B7: power consumption and energy efficiency."""

import pytest
from conftest import show

from repro.experiments import power_summary


def test_power_energy(benchmark):
    s = benchmark.pedantic(lambda: power_summary(n_runs=50), rounds=1, iterations=1)
    show(
        "Power & energy (Sec. VI-B7)",
        "\n".join(
            [
                f"IP core fixed : {s['ip_power_fixed_w']:.3f} W "
                f"(paper {s['paper_ip_fixed']} W)",
                f"IP core float : {s['ip_power_float_w']:.3f} W "
                f"(paper {s['paper_ip_float']} W)",
                f"PS (CPU)      : {s['ps_power_w']:.3f} W",
                f"speedup fixed : {s['speedup_fixed']:.2f}x "
                f"(paper {s['paper_speedup_fixed']}x)",
                f"energy eff.   : {s['energy_efficiency']:.2f}x "
                f"(paper {s['paper_energy_efficiency']}x)",
            ]
        ),
    )
    # fixed-point IP draws far less than float (paper: 0.87 vs 3.98 W)
    assert s["ip_power_fixed_w"] * 3 < s["ip_power_float_w"]
    # board power rises ~1.33x but latency drops 2.63x -> ~2x energy win
    assert s["energy_efficiency"] == pytest.approx(1.98, rel=0.10)
    assert s["ip_power_fixed_w"] == pytest.approx(0.866, rel=0.15)
    assert s["ip_power_float_w"] == pytest.approx(3.977, rel=0.15)
