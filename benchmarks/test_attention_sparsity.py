"""Paper Sec. V-A claim (via [25]): ReLU attention sparsifies weights.

Quantifies sparsity/entropy of ReLU vs softmax attention on the trained
proposed model's own MHSA block — the property the paper says "assists
the analysis of the information flow in the model".
"""

import numpy as np
from conftest import show

from repro import nn
from repro.experiments import format_table
from repro.profiling import attention_entropy, attention_sparsity, head_diversity


def _run(trained):
    mhsa = trained.mhsa
    rng = np.random.default_rng(0)
    x = rng.normal(
        size=(8, mhsa.channels, mhsa.height, mhsa.width)
    ).astype(np.float32)

    # same trained weights, both activations
    soft = nn.MHSA2d(
        mhsa.channels, mhsa.height, mhsa.width, heads=mhsa.heads,
        attention_activation="softmax", rng=np.random.default_rng(1),
    )
    for name in ("w_q", "w_k", "w_v"):
        getattr(soft, name).data[...] = getattr(mhsa, name).data
    soft.rel.rel_h.data[...] = mhsa.rel.rel_h.data
    soft.rel.rel_w.data[...] = mhsa.rel.rel_w.data

    rows = []
    for label, module in (("relu (deployed)", mhsa), ("softmax", soft)):
        attn = module.attention_maps(x)
        rows.append(
            {
                "variant": label,
                "sparsity": attention_sparsity(attn),
                "entropy": attention_entropy(attn),
                "diversity": head_diversity(attn),
            }
        )
    return rows


def test_attention_sparsity(benchmark, trained_tiny_proposed):
    rows = benchmark.pedantic(
        lambda: _run(trained_tiny_proposed), rounds=1, iterations=1
    )
    show(
        "ReLU vs softmax attention statistics (trained proposed model)",
        format_table(
            ["variant", "sparsity", "row entropy (nats)", "head diversity"],
            [[r["variant"], f"{r['sparsity']:.1%}", f"{r['entropy']:.3f}",
              f"{r['diversity']:.3f}"] for r in rows],
        ),
    )
    relu, soft = rows
    # the deployed ReLU attention is sparse, softmax is dense
    assert relu["sparsity"] > 0.2
    assert soft["sparsity"] == 0.0
    # and correspondingly lower entropy (more focused information flow)
    assert relu["entropy"] < soft["entropy"]
