"""Ablation: backward-pass strategy for ODE blocks.

Full backprop through the unrolled Euler loop (the paper's training)
vs the checkpointed backward vs the O(1)-memory adjoint — wall-clock
per training step and gradient fidelity at equal step counts.
"""

import time

import numpy as np
from conftest import show

from repro import ode
from repro.experiments import format_table
from repro.ode import AdjointODEBlock
from repro.tensor import Tensor

STEPS = 16
CHANNELS = 16


def _block(kind):
    func = ode.ConvODEFunc(CHANNELS, conv="dsc", rng=np.random.default_rng(0))
    if kind == "backprop":
        return ode.ODEBlock(func, solver="euler", steps=STEPS)
    return AdjointODEBlock(func, steps=STEPS, mode=kind)


def _grad_and_time(block, x_data, repeats=3):
    times = []
    for _ in range(repeats):
        block.zero_grad()
        x = Tensor(x_data, requires_grad=True)
        t0 = time.perf_counter()
        block(x).sum().backward()
        times.append(time.perf_counter() - t0)
    grads = np.concatenate([p.grad.ravel() for p in block.parameters()])
    return grads / repeats, float(np.median(times))


def _run():
    rng = np.random.default_rng(1)
    x_data = rng.normal(size=(4, CHANNELS, 8, 8)).astype(np.float32)
    results = {}
    for kind in ("backprop", "checkpoint", "adjoint"):
        grads, seconds = _grad_and_time(_block(kind), x_data)
        results[kind] = {"grads": grads, "seconds": seconds}
    return results


def test_ablation_adjoint(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    from repro.profiling import memory_table

    mem = {
        r["strategy"]: r
        for r in memory_table(_block("backprop"), (4, CHANNELS, 8, 8))
    }
    ref = results["backprop"]["grads"]
    rows = []
    for kind, r in results.items():
        rel = np.abs(r["grads"] - ref).max() / (np.abs(ref).max() + 1e-12)
        m = mem[kind]
        rows.append([kind, f"{r['seconds'] * 1e3:.1f}", f"{rel:.2e}",
                     f"{m['bytes'] / 1024:.0f} KiB", f"{m['ratio']:.1%}"])
    show(
        f"Ablation — ODE backward strategy (C={STEPS})",
        format_table(
            ["strategy", "fwd+bwd ms", "max rel grad err",
             "activation memory", "vs backprop"],
            rows,
        ),
    )
    # the memory story: backprop grows with C, adjoint does not
    assert mem["adjoint"]["bytes"] < mem["checkpoint"]["bytes"] < mem["backprop"]["bytes"]
    ref_g = results["backprop"]["grads"]
    chk_g = results["checkpoint"]["grads"]
    adj_g = results["adjoint"]["grads"]
    # checkpointing is exact
    assert np.abs(chk_g - ref_g).max() < 1e-4 * (np.abs(ref_g).max() + 1e-12)
    # adjoint reconstruction carries O(h) error but stays in the ballpark
    rel_adj = np.abs(adj_g - ref_g).max() / (np.abs(ref_g).max() + 1e-12)
    assert rel_adj < 0.5
    # all strategies complete in comparable time (same asymptotics)
    times = [r["seconds"] for r in results.values()]
    assert max(times) < 10 * min(times)
