"""Device-context comparison: ZCU104 (the paper) vs ZCU102 (VAQF et al.).

Sec. II-C notes that the competing FPGA transformer implementations use
*larger* boards than the paper's ZCU104 — part of the paper's "smallest
Transformer" claim.  This bench quantifies the headroom both deployed
designs would have on the ZCU102.
"""

from conftest import show

from repro.experiments import FIXED_DEFAULT, format_table
from repro.experiments.designs import botnet_mhsa_design, proposed_mhsa_design
from repro.fpga import ZCU102, ZCU104, MHSADesign


def _run():
    rows = []
    for label, factory in (("BoTNet (512,3,3)", botnet_mhsa_design),
                           ("Proposed (64,6,6)", proposed_mhsa_design)):
        for device in (ZCU104, ZCU102):
            base = factory(FIXED_DEFAULT)
            design = MHSADesign(
                base.channels, base.height, base.width, heads=base.heads,
                arithmetic=base.arithmetic, unroll=base.unroll,
                weight_partition=base.weight_partition,
                input_partition=base.input_partition, device=device,
            )
            rep = design.resource_report()
            u = rep.utilization()
            rows.append(
                {
                    "config": f"{label} on {device.name}",
                    "bram_util": u["BRAM"],
                    "dsp_util": u["DSP"],
                    "lut_util": u["LUT"],
                    "fits": rep.fits(),
                }
            )
    return rows


def test_device_comparison(benchmark):
    rows = benchmark.pedantic(_run, rounds=3, iterations=1)
    show(
        "Device comparison — same designs on ZCU104 vs ZCU102",
        format_table(
            ["config", "BRAM util", "DSP util", "LUT util", "fits"],
            [[r["config"], f"{r['bram_util']:.0%}", f"{r['dsp_util']:.0%}",
              f"{r['lut_util']:.0%}", "yes" if r["fits"] else "NO"]
             for r in rows],
        ),
    )
    by = {r["config"]: r for r in rows}
    # every deployed design fits both boards...
    assert all(r["fits"] for r in rows)
    # ...but the smaller ZCU104 runs much closer to its BRAM limit — the
    # constraint that drove the paper's buffer management (Table II)
    assert (by["BoTNet (512,3,3) on ZCU104"]["bram_util"]
            > 2 * by["BoTNet (512,3,3) on ZCU102"]["bram_util"])
