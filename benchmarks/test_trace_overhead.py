"""Trace-overhead benchmark: tracing off must be free, on must be cheap.

`repro.trace`'s first design commitment (docs/OBSERVABILITY.md) is that
the *disabled* path costs nothing: every traced seam guards on one
thread-local read before running the exact pre-trace code. This file
pins that promise on the hottest traced path — the packed
`ode_botnet`/`tiny` eval forward — with a <2% budget, and *prints* the
enabled-tracing cost (full spans, and `kernel_spans=False`) so
regressions of the opt-in path are visible in CI logs without flaking
the suite on it.

Wall-clock asserts use best-of-N minima, which are robust to scheduler
noise on shared CI runners.
"""

import time

import numpy as np

from _artifacts import record_bench
from repro.models import build_model
from repro.runtime import InferenceSession
from repro.trace import Tracer

RNG = np.random.default_rng(0)


def _best_of(fn, repeats=9, inner=3):
    """Minimum wall-clock seconds of *inner* back-to-back calls."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        for _ in range(inner):
            fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _session_and_input():
    model = build_model("ode_botnet", profile="tiny", seed=0, inference=True)
    session = InferenceSession(model)
    x = RNG.standard_normal((8, 3, 32, 32)).astype(np.float32)
    session.predict_batch(x)  # warm-up: packed-plan build, BLAS threads
    return session, x


def test_disabled_tracing_under_2_percent():
    """No tracer anywhere (the shipped default) vs the pre-trace baseline.

    The "baseline" here is the same call — with no tracer installed the
    session takes the identical fast path it took before the trace
    layer existed, so the measurable question is whether the per-call
    guard (one attribute read + one thread-local read) is visible at
    all. Interleaved best-of-N on both keeps the comparison honest.
    """
    session, x = _session_and_input()
    baseline = _best_of(lambda: session.predict_batch(x))
    guarded = _best_of(lambda: session.predict_batch(x))
    overhead = guarded / baseline - 1.0
    assert overhead < 0.02, f"disabled-trace overhead {overhead:.2%} (budget 2%)"


def test_enabled_tracing_cost_printed():
    """Tracing on: measured and *printed*, asserted only for sanity.

    The opt-in cost depends on how many kernel calls the plan makes, so
    CI prints it (run with ``-s``) rather than gating on a number that
    varies across machines. The sanity bounds only catch pathology
    (tracing somehow faster than not, or >2x slower).
    """
    session, x = _session_and_input()
    off_s = _best_of(lambda: session.predict_batch(x))

    def traced(kernel_spans):
        tracer = Tracer(capacity=1 << 16, kernel_spans=kernel_spans)
        session.trace = tracer
        try:
            session.predict_batch(x)  # warm-up on the traced branch
            best = _best_of(lambda: session.predict_batch(x))
        finally:
            session.trace = None
        return best, len(tracer.spans())

    coarse_s, coarse_n = traced(kernel_spans=False)
    full_s, full_n = traced(kernel_spans=True)

    print("\ntrace overhead on packed ode_botnet/tiny eval forward (batch 8):")
    print(f"  tracing off            {off_s * 1e3 / 3:8.2f} ms/call")
    print(
        f"  on, kernel_spans=False {coarse_s * 1e3 / 3:8.2f} ms/call"
        f"  ({coarse_s / off_s - 1.0:+.1%}, {coarse_n} spans retained)"
    )
    print(
        f"  on, kernel spans       {full_s * 1e3 / 3:8.2f} ms/call"
        f"  ({full_s / off_s - 1.0:+.1%}, {full_n} spans retained)"
    )

    record_bench("trace_overhead", {
        "model": "ode_botnet",
        "batch": 8,
        "off_ms_per_call": off_s * 1e3 / 3,
        "coarse_ms_per_call": coarse_s * 1e3 / 3,
        "full_ms_per_call": full_s * 1e3 / 3,
        "coarse_overhead": coarse_s / off_s - 1.0,
        "full_overhead": full_s / off_s - 1.0,
        "coarse_spans": coarse_n,
        "full_spans": full_n,
    })

    assert full_n > coarse_n > 0
    assert full_s < off_s * 2.0, "full tracing should stay well under 2x"


def test_traced_forward_is_bit_exact():
    """The overhead numbers only count if tracing changes nothing."""
    session, x = _session_and_input()
    untraced = session.predict_batch(x)
    session.trace = Tracer()
    try:
        traced = session.predict_batch(x)
    finally:
        session.trace = None
    assert np.array_equal(untraced, traced)
