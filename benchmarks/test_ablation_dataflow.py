"""Ablation: dataflow (ping-pong weight streaming) vs the paper's
sequential schedule.

The paper's shared weight buffer serialises the three projections
behind their weight loads; a second (shadow) buffer overlaps the next
load with the current projection at the cost of one more W buffer of
BRAM.  This bench quantifies the latency/BRAM trade at both deployed
geometries.
"""

from conftest import show

from repro.experiments import FIXED_DEFAULT, format_table
from repro.experiments.designs import botnet_mhsa_design, proposed_mhsa_design


def _run():
    rows = []
    for label, factory in (
        ("BoTNet (512,3,3)", botnet_mhsa_design),
        ("Proposed (64,6,6)", proposed_mhsa_design),
    ):
        for dataflow in (False, True):
            d = factory(FIXED_DEFAULT, dataflow=dataflow)
            rep = d.resource_report()
            rows.append(
                {
                    "config": f"{label} {'dataflow' if dataflow else 'sequential'}",
                    "cycles": d.total_cycles(),
                    "ms": d.latency_ms(),
                    "bram": rep.bram,
                    "fits": rep.fits(),
                }
            )
    return rows


def test_ablation_dataflow(benchmark):
    rows = benchmark.pedantic(_run, rounds=3, iterations=1)
    show(
        "Ablation — sequential vs dataflow weight streaming",
        format_table(
            ["config", "kernel cycles", "latency ms", "BRAM", "fits"],
            [[r["config"], f"{r['cycles']:,}", f"{r['ms']:.2f}", r["bram"],
              "yes" if r["fits"] else "NO"] for r in rows],
        ),
    )
    by = {r["config"]: r for r in rows}
    seq_big = by["BoTNet (512,3,3) sequential"]
    df_big = by["BoTNet (512,3,3) dataflow"]
    seq_small = by["Proposed (64,6,6) sequential"]
    df_small = by["Proposed (64,6,6) dataflow"]
    # dataflow always saves cycles...
    assert df_big["cycles"] < seq_big["cycles"]
    assert df_small["cycles"] < seq_small["cycles"]
    # ...but the extra buffer breaks the 512-channel build's BRAM budget
    # while the proposed geometry absorbs it — the design-space insight.
    assert seq_big["fits"] and not df_big["fits"]
    assert df_small["fits"]
    # saving at the big geometry is substantial (weight stream ~22%)
    assert 1 - df_big["cycles"] / seq_big["cycles"] > 0.15
