"""Table IX: execution time of CPU and FPGA implementations (ms)."""

import pytest
from conftest import show

from repro.experiments import format_table, table9_execution_time


def test_table9_execution_time(benchmark):
    rows = benchmark.pedantic(
        lambda: table9_execution_time(n_runs=100), rounds=1, iterations=1
    )
    show(
        "Table IX — execution time of the (512, 3, 3) MHSA block",
        format_table(
            ["mode", "mean ms", "max ms", "std ms", "speedup",
             "paper mean", "paper max", "paper std"],
            [[r["mode"], f"{r['mean_ms']:.2f}", f"{r['max_ms']:.2f}",
              f"{r['std_ms']:.3f}", f"{r['speedup_vs_cpu']:.2f}x",
              r["paper_mean"], r["paper_max"], r["paper_std"]] for r in rows],
        ),
    )
    cpu, fl, fx = rows
    # ordering + the paper's headline factors
    assert cpu["mean_ms"] > fl["mean_ms"] > fx["mean_ms"]
    assert fx["speedup_vs_cpu"] == pytest.approx(2.63, rel=0.07)
    assert fl["speedup_vs_cpu"] == pytest.approx(1.45, rel=0.10)
    # absolute latencies within 8%
    for r in rows:
        assert r["mean_ms"] == pytest.approx(r["paper_mean"], rel=0.08)
        assert r["max_ms"] >= r["mean_ms"]
