"""Shared helpers for the benchmark suite.

Each benchmark regenerates one table or figure of the paper and prints
our values next to the paper's (run with ``-s`` to see the tables, or
read the asserts for the shape-level claims).  Training-based benches
use the reduced ``tiny``/``small`` profiles so the whole suite runs in
minutes on a laptop; the hardware-model benches run at the paper's
exact configurations.
"""

import sys

import pytest


def show(title, body):
    """Print a labelled block (visible with pytest -s)."""
    print(f"\n{'=' * 70}\n{title}\n{'=' * 70}\n{body}", file=sys.stderr)


@pytest.fixture(scope="session")
def trained_tiny_proposed():
    """One tiny trained proposed model shared by quantisation benches."""
    from repro.experiments.quantization import trained_proposed_model

    return trained_proposed_model(profile="tiny", epochs=6, n_train_per_class=30)
