"""Lint-speed smoke benchmark: the full-tree lint stays interactive.

The linter is wired into CI and into `tests/test_codebase_quality.py`,
so its wall-clock cost is paid on every run. Contract: one cold pass of
the AST rule engine over the whole repository (`src`, `tests`,
`examples`, `benchmarks`) finishes in well under 10 s, the same pass
plus the whole-program concurrency analysis and suppression audit stays
under 15 s, and one static shape/Q-format walk of the registry model
costs milliseconds.
"""

import os
import time

import repro
from repro.fixedpoint import QFormat
from repro.lint import check_fixed_point, lint_paths
from repro.lint.cli import main as lint_main
from repro.models import build_model

from conftest import show

# .../src/repro/__init__.py -> repository root
ROOT = os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
)
TREE = [
    os.path.join(ROOT, d) for d in ("src", "tests", "examples", "benchmarks")
]


def test_full_tree_lint_under_ten_seconds():
    existing = [p for p in TREE if os.path.isdir(p)]
    assert existing, TREE
    start = time.perf_counter()
    diags = lint_paths(existing)
    elapsed = time.perf_counter() - start
    show(
        "Full-tree lint speed",
        f"paths: {', '.join(os.path.basename(p) for p in existing)}\n"
        f"findings: {len(diags)}\n"
        f"elapsed: {elapsed * 1000:.0f} ms (budget 10000 ms)",
    )
    assert elapsed < 10.0, f"full-tree lint took {elapsed:.1f}s"


def test_full_lint_with_concurrency_under_fifteen_seconds(capsys):
    # the CI lint job runs exactly this: every rule, the CON001-CON004
    # whole-program analysis, and the stale-suppression audit
    existing = [p for p in TREE if os.path.isdir(p)]
    start = time.perf_counter()
    rc = lint_main(
        existing + ["--concurrency", "--report-unused-suppressions",
                    "--format", "json"]
    )
    elapsed = time.perf_counter() - start
    out = capsys.readouterr().out
    show(
        "Full lint + concurrency + suppression audit speed",
        f"exit code: {rc}\n"
        f"elapsed: {elapsed * 1000:.0f} ms (budget 15000 ms)",
    )
    assert rc == 0, out
    assert elapsed < 15.0, f"lint + concurrency took {elapsed:.1f}s"


def test_shape_check_is_milliseconds():
    model = build_model("ode_botnet", profile="tiny", seed=0)
    model.eval()
    ffmt, pfmt = QFormat(32, 16), QFormat(24, 8)
    check_fixed_point(model, ffmt, pfmt)  # warm imports
    start = time.perf_counter()
    for _ in range(10):
        check_fixed_point(model, ffmt, pfmt)
    elapsed = (time.perf_counter() - start) / 10
    show(
        "Static shape/Q-format walk speed",
        f"per walk: {elapsed * 1000:.2f} ms (budget 250 ms)",
    )
    assert elapsed < 0.25, f"shape walk took {elapsed * 1000:.0f} ms"
