"""Paper Sec. II-A claim (via [8]): convolution disperses feature maps,
MHSA concentrates them.

Measures per-block variance ratios on trained ODENet (conv-only) and
ODE-BoTNet (conv + MHSA) models: the MHSA block's output/input variance
ratio should sit below the conv blocks'.
"""

import numpy as np
from conftest import show

from repro.data import DataLoader, SynthSTL
from repro.experiments import format_table
from repro.experiments.accuracy import train_one
from repro.profiling import mhsa_vs_conv_variance, stage_variance_profile
from repro.tensor import Tensor


def _run():
    test = SynthSTL("test", size=32, n_per_class=10, seed=0)
    images, _ = next(iter(DataLoader(test, batch_size=len(test))))
    x = Tensor(images)
    out = {}
    for name in ("odenet", "ode_botnet"):
        model, _ = train_one(
            name, profile="tiny", epochs=6, n_train_per_class=30, seed=0,
            augment=False,
        )
        model.eval()
        out[name] = {
            "profile": stage_variance_profile(model, x),
            "ratios": mhsa_vs_conv_variance(model, x),
        }
    return out


def test_variance_analysis(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    lines = []
    for name, r in results.items():
        prof = "  ".join(
            f"{p['stage']}={p['variance']:.2f}" for p in r["profile"]
        )
        lines.append(f"{name:12s} stage variance: {prof}")
        ratios = "  ".join(f"{k}={v:.2f}" for k, v in r["ratios"].items())
        lines.append(f"{name:12s} block out/in ratio: {ratios}")
    show("Feature-map variance through the network (trained, tiny)",
         "\n".join(lines))

    hybrid = results["ode_botnet"]["ratios"]
    conv_only = results["odenet"]["ratios"]
    # Within the hybrid, the MHSA block disperses the features LESS than
    # the average of its conv blocks ([8]'s observation).
    conv_mean = np.mean([v for k, v in hybrid.items() if "conv" in k])
    assert hybrid["block3 (mhsa)"] < conv_mean * 1.5
    # Sanity: all ratios finite and positive in both models.
    for r in (hybrid, conv_only):
        assert all(np.isfinite(v) and v > 0 for v in r.values())
