"""Ablation: depthwise-separable vs dense convolutions in ODEBlocks.

DESIGN.md ablation #6 — the paper adopts DSC from [21] for a ~K^2
parameter cut (Sec. IV); this bench quantifies the parameter/accuracy
trade on the ODENet backbone.
"""

from conftest import show

from repro.experiments import format_table
from repro.experiments.accuracy import train_one


def _run():
    rows = []
    for conv in ("dsc", "full"):
        model, hist = train_one(
            "odenet", profile="tiny", epochs=5, n_train_per_class=30,
            seed=0, augment=False, conv=conv,
        )
        rows.append(
            {
                "conv": conv,
                "params": model.num_parameters(),
                "accuracy": hist.best()[1] * 100,
            }
        )
    return rows


def test_ablation_dsc(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    show(
        "Ablation — DSC vs dense conv in ODEBlocks (5 epochs, tiny)",
        format_table(
            ["conv", "params", "best acc %"],
            [[r["conv"], r["params"], f"{r['accuracy']:.1f}"] for r in rows],
        ),
    )
    by = {r["conv"]: r for r in rows}
    # DSC delivers a large parameter cut...
    assert by["dsc"]["params"] < 0.6 * by["full"]["params"]
    # ...without catastrophic accuracy loss
    assert by["dsc"]["accuracy"] > by["full"]["accuracy"] - 25
