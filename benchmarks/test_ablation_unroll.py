"""Ablation: projection-loop unroll factor of the MHSA accelerator.

DESIGN.md ablation #5 — sweeps the unroll factor of the X·W projection
loop and reports kernel cycles vs DSP cost, exposing the latency/area
trade the paper resolves at unroll 128.
"""

import pytest
from conftest import show

from repro.experiments import FIXED_DEFAULT, format_table
from repro.experiments.designs import botnet_mhsa_design

UNROLLS = (1, 8, 32, 64, 128, 256, 512)


def _run():
    rows = []
    for unroll in UNROLLS:
        d = botnet_mhsa_design(FIXED_DEFAULT, unroll=unroll)
        rep = d.resource_report()
        rows.append(
            {
                "unroll": unroll,
                "cycles": d.total_cycles(),
                "ms": d.latency_ms(),
                "dsp": rep.dsp,
                "fits": rep.fits(),
            }
        )
    return rows


def test_ablation_unroll(benchmark):
    rows = benchmark.pedantic(_run, rounds=3, iterations=1)
    show(
        "Ablation — unroll factor (512ch fixed-point design)",
        format_table(
            ["unroll", "kernel cycles", "latency ms", "DSP", "fits"],
            [[r["unroll"], r["cycles"], f"{r['ms']:.2f}", r["dsp"],
              "yes" if r["fits"] else "NO"] for r in rows],
        ),
    )
    cycles = [r["cycles"] for r in rows]
    dsps = [r["dsp"] for r in rows]
    # latency monotonically improves, DSP monotonically grows
    assert cycles == sorted(cycles, reverse=True)
    assert dsps == sorted(dsps)
    # diminishing returns: the last doubling buys < 25% once the
    # non-unrolled attention stages dominate (Amdahl)
    gain_first = cycles[0] / cycles[1]
    gain_last = cycles[-2] / cycles[-1]
    assert gain_first > 4
    assert gain_last < 1.2
    # the paper's design point fits the device
    by = {r["unroll"]: r for r in rows}
    assert by[128]["fits"]
    assert by[128]["dsp"] == pytest.approx(137, rel=0.05)
