"""Ablation: efficient-attention variants (paper Sec. II-B).

Full MHSA costs O(N²·D); the Linear-Transformer kernel trick costs
O(N·D²/k) and window attention O(N·w²·D).  This bench (1) verifies the
asymptotic crossover on growing feature maps and (2) trains the
proposed model with each variant to compare accuracy at matched size.
"""

import time

import numpy as np
from conftest import show

from repro import nn
from repro.experiments import format_table
from repro.experiments.accuracy import train_one
from repro.tensor import Tensor, no_grad


def _time_forward(module, x, repeats=3):
    with no_grad():
        module(x)  # warm-up
        times = []
        for _ in range(repeats):
            t0 = time.perf_counter()
            module(x)
            times.append(time.perf_counter() - t0)
    return float(np.median(times))


def _scaling_table():
    rng = np.random.default_rng(0)
    channels, heads = 32, 4
    rows = []
    for size in (8, 16, 32):
        x = Tensor(rng.normal(size=(1, channels, size, size)).astype(np.float32))
        full = nn.MHSA2d(channels, size, size, heads=heads, rng=rng)
        lin = nn.LinearAttention2d(channels, size, size, heads=heads, rng=rng)
        win = nn.WindowAttention2d(channels, size, size, heads=heads,
                                   window=4, rng=rng)
        rows.append(
            {
                "n": size * size,
                "full_ms": _time_forward(full, x) * 1e3,
                "linear_ms": _time_forward(lin, x) * 1e3,
                "window_ms": _time_forward(win, x) * 1e3,
            }
        )
    return rows


def _accuracy_table():
    rows = []
    for kind in ("full", "linear", "window"):
        _, hist = train_one(
            "ode_botnet", profile="tiny", epochs=6, n_train_per_class=30,
            seed=0, augment=False, attention=kind,
        )
        rows.append({"attention": kind, "accuracy": hist.best()[1] * 100})
    return rows


def test_ablation_efficient_attention(benchmark):
    result = benchmark.pedantic(
        lambda: (_scaling_table(), _accuracy_table()), rounds=1, iterations=1
    )
    scaling, accuracy = result
    show(
        "Ablation — attention variants: forward-time scaling (ms)",
        format_table(
            ["N = H*W", "full MHSA", "linear", "window(4)"],
            [[r["n"], f"{r['full_ms']:.2f}", f"{r['linear_ms']:.2f}",
              f"{r['window_ms']:.2f}"] for r in scaling],
        )
        + "\n\n"
        + format_table(
            ["attention", "best acc % (6 epochs, tiny)"],
            [[r["attention"], f"{r['accuracy']:.1f}"] for r in accuracy],
        ),
    )
    # asymptotics: full attention's cost grows faster with N than the
    # efficient variants' (compare growth from smallest to largest map)
    growth = lambda key: scaling[-1][key] / scaling[0][key]
    assert growth("full_ms") > growth("linear_ms")
    assert growth("full_ms") > growth("window_ms")
    # all variants learn the task
    assert all(r["accuracy"] > 30 for r in accuracy)
