"""Table VIII: accuracy vs fixed-point number representation."""

import pytest
from conftest import show

from repro.experiments import format_table, table8_quant_accuracy


def test_table8_quant_accuracy(benchmark, trained_tiny_proposed):
    rows = benchmark.pedantic(
        lambda: table8_quant_accuracy(
            model=trained_tiny_proposed, profile="tiny", n_per_class=20
        ),
        rounds=1,
        iterations=1,
    )
    show(
        "Table VIII — accuracy vs fixed-point representation",
        format_table(
            ["format (feat-param)", "accuracy %", "paper %"],
            [[r["format"], f"{r['accuracy']:.1f}", r["paper_accuracy"]]
             for r in rows],
        ),
    )
    by = {r["format"]: r["accuracy"] for r in rows}
    # Paper shape: 32(16)-24(8) and 24(12)-20(6) show no degradation.
    assert by["32(16)-24(8)"] == pytest.approx(by["float"], abs=0.5)
    assert by["24(12)-20(6)"] == pytest.approx(by["float"], abs=2.0)
    # Narrow formats cannot beat the wide ones by more than noise, and
    # the narrowest must not exceed float accuracy.
    assert by["16(8)-12(4)"] <= by["float"] + 1.0
