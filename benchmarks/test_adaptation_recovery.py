"""Streaming adaptation benchmark: accuracy recovered while serving.

The scenario :mod:`repro.adapt` exists for, measured end to end: a
trained tiny model serves a request stream whose input distribution
*rotates* away mid-stream (label-preserving covariate shift from
:class:`repro.data.DriftSchedule`).  Two identical replays of the same
seeded drifted schedule:

* **baseline** — no adaptation; accuracy falls off a cliff when the
  drift ramps in and stays down;
* **adapted** — ``SessionConfig(adapt=...)`` attaches the streaming
  :class:`~repro.adapt.AdaptationController`; labelled requests feed
  the sample tap, the shadow trainer fine-tunes the final ODE block +
  head, and every ``publish_every`` steps the new weights are
  hot-swapped into the serving replica mid-run.

Three claims, all hard-gated on every machine (the run is seeded and
the recovery margin is large — prototyped ~0.85 adapted vs ~0.29
unadapted on the drifted tail):

1. **Serving is never disturbed** — both runs complete with zero hung
   futures and zero unexpected errors across >= 1 hot weight swap.
2. **Adaptation adapts** — at least one swap lands during the adapted
   run and the adaptation loop finishes without an error.
3. **Accuracy recovers** — the adapted run's final-window served
   accuracy (last fifth of the request timeline, fully drifted) beats
   the no-adapt baseline's.

Artifact: ``BENCH_adaptation_recovery.json`` with both
accuracy-vs-requests-served window curves.

Runs standalone:

    pytest benchmarks/test_adaptation_recovery.py -q -s
"""

import numpy as np

from repro.adapt import AdaptConfig
from repro.data import DriftSchedule, make_drift_stream
from repro.runtime import SessionConfig
from repro.serve import Server, run_load

from _artifacts import record_bench
from conftest import show

PROFILE = "tiny"
SEED = 0
N_REQUESTS = 360
RATE_HZ = 45.0          # ~8s of wall clock; leaves the shadow
                        # trainer plenty of steps on 1-CPU runners
DRIFT = dict(kind="rotation", severity=3.0, start=0.2, ramp=0.2)
WINDOWS = 10


def _drifted_stream():
    schedule = DriftSchedule(**DRIFT)
    images, labels, _ = make_drift_stream(
        N_REQUESTS, schedule, size=32, seed=SEED
    )
    return schedule, images, labels


def _replay(state, images, labels, *, adapt):
    """Serve the drifted stream once; returns (report, metrics)."""
    config = None
    if adapt:
        config = SessionConfig(adapt=AdaptConfig(
            lr=0.05, batch_size=16, min_samples=32, publish_every=8,
            tap_capacity=256, seed=SEED,
        ))
    server = Server.build(
        "ode_botnet", PROFILE, 1, config=config,
        pretrained_state=state, queue_capacity=N_REQUESTS,
    )
    try:
        offsets = np.arange(N_REQUESTS) / RATE_HZ
        report = run_load(server, images, offsets, seed=SEED,
                          labels=labels)
        metrics = server.metrics()
    finally:
        server.close()
    return report, metrics


def _curve(report):
    return [
        None if w["accuracy"] != w["accuracy"] else round(w["accuracy"], 4)
        for w in report.accuracy_windows(WINDOWS)
    ]


def test_adaptation_recovers_served_accuracy(trained_tiny_proposed):
    state = trained_tiny_proposed.state_dict()
    schedule, images, labels = _drifted_stream()

    base_report, _ = _replay(state, images, labels, adapt=False)
    adapt_report, adapt_metrics = _replay(state, images, labels,
                                          adapt=True)

    snap = adapt_metrics["adaptation"]
    base_final = base_report.final_accuracy(0.2)
    adapt_final = adapt_report.final_accuracy(0.2)

    rows = [f"{'':14s} " + "  ".join(f"w{i}" for i in range(WINDOWS))]
    for name, report in (("baseline", base_report),
                         ("adapted", adapt_report)):
        curve = "  ".join(
            " -" if c is None else f"{c:.2f}" for c in _curve(report)
        )
        rows.append(f"{name:14s} {curve}")
    rows.append(
        f"final fifth: baseline {base_final:.3f} vs adapted "
        f"{adapt_final:.3f}  ({snap['publisher']['swaps']} swaps, "
        f"{snap['trainer']['steps']} online steps, max pause "
        f"{snap['publisher']['max_pause_ms']:.2f} ms)"
    )
    show(f"adaptation recovery under {schedule.describe()}",
         "\n".join(rows))

    # claim 1: serving is never disturbed, in either run
    for name, report in (("baseline", base_report),
                         ("adapted", adapt_report)):
        assert report.hung == 0, f"{name}: hung futures"
        assert report.errors == 0, f"{name}: {report.error_examples}"
        assert report.completed == N_REQUESTS, name

    # claim 2: the loop actually ran and swapped, without an error
    assert snap["error"] is None
    assert snap["publisher"]["swaps"] >= 1
    assert snap["trainer"]["steps"] >= 1
    assert snap["tap"]["offered"] == N_REQUESTS

    # claim 3: served accuracy recovered on the fully-drifted tail
    assert adapt_final > base_final, (
        f"adapted final-window accuracy {adapt_final:.3f} did not beat "
        f"the no-adapt baseline {base_final:.3f}"
    )

    record_bench("adaptation_recovery", {
        "drift": schedule.describe(),
        "requests": N_REQUESTS,
        "rate_hz": RATE_HZ,
        "windows": WINDOWS,
        "baseline": {
            "curve": _curve(base_report),
            "final_accuracy": round(base_final, 4),
            "completed": base_report.completed,
            "hung": base_report.hung,
        },
        "adapted": {
            "curve": _curve(adapt_report),
            "final_accuracy": round(adapt_final, 4),
            "completed": adapt_report.completed,
            "hung": adapt_report.hung,
            "swaps": snap["publisher"]["swaps"],
            "online_steps": snap["trainer"]["steps"],
            "weights_version": snap["publisher"]["last_version"],
            "max_pause_ms": round(snap["publisher"]["max_pause_ms"], 3),
            "tap": snap["tap"],
        },
        "gate_active": True,
    })
