"""Persisted benchmark artifacts: ``BENCH_<name>.json`` at repo root.

Benchmarks print their tables (visible with ``pytest -s``), which is
ephemeral; CI also wants machine-readable numbers it can upload and
diff across commits.  :func:`record_bench` writes one JSON file per
benchmark at the repository root — ``BENCH_compile_speedup.json``,
``BENCH_kernel_dispatch.json``, ... — with a small stable envelope
(schema version, machine fingerprint, numpy version) around the
benchmark's own payload.  Files are written atomically and overwritten
on re-run, so the repo root always holds the latest numbers for this
checkout.
"""

from __future__ import annotations

import json
import os
import platform

import numpy as np

BENCH_SCHEMA_VERSION = 1

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def bench_path(name: str) -> str:
    """Repo-root path of a benchmark artifact."""
    return os.path.join(_ROOT, f"BENCH_{name}.json")


def record_bench(name: str, payload: dict, *,
                 gate_skip_reason: str | None = None) -> str:
    """Persist *payload* as ``BENCH_<name>.json``; returns the path.

    Benchmarks with a conditional hard gate set ``gate_active`` in
    their payload.  When the gate is off the artifact must say *why*
    (for CI readers diffing numbers across runner shapes), so a
    ``gate_skip_reason`` is required exactly when ``gate_active`` is
    false — passing one alongside an active gate, or omitting it for
    an inactive one, is an error.
    """
    gate_active = payload.get("gate_active")
    if gate_active is False and not gate_skip_reason:
        raise ValueError(
            f"bench {name!r}: gate_active is false but no "
            f"gate_skip_reason was given"
        )
    if gate_active is not False and gate_skip_reason:
        raise ValueError(
            f"bench {name!r}: gate_skip_reason given but the gate "
            f"is active"
        )
    entry = {
        "schema": BENCH_SCHEMA_VERSION,
        "bench": name,
        "machine": {
            "machine": platform.machine(),
            "processor": platform.processor(),
            "cpus": os.cpu_count(),
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        "payload": payload,
    }
    if gate_skip_reason:
        entry["gate_skip_reason"] = str(gate_skip_reason)
    path = bench_path(name)
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(entry, fh, indent=2, sort_keys=True)
    os.replace(tmp, path)
    return path
