"""Ablation: arithmetic flavour of the accelerator datapath.

The paper compares float32 vs 32(16)-24(8) fixed point; this sweep adds
float16 and narrower fixed formats, charting the latency / DSP / power
frontier at both deployed geometries.
"""

from conftest import show

from repro.experiments import format_table
from repro.experiments.designs import botnet_mhsa_design
from repro.fixedpoint import QFormat
from repro.fpga import Arithmetic, ip_power_w

ARITHMETICS = [
    ("float32", Arithmetic.float32()),
    ("float16", Arithmetic.float16()),
    ("fixed 32(16)-24(8)", Arithmetic.fixed(QFormat(32, 16), QFormat(24, 8))),
    ("fixed 20(10)-16(4)", Arithmetic.fixed(QFormat(20, 10), QFormat(16, 4))),
    ("fixed 16(8)-12(4)", Arithmetic.fixed(QFormat(16, 8), QFormat(12, 4))),
]


def _run():
    rows = []
    for label, arith in ARITHMETICS:
        d = botnet_mhsa_design(arith)
        rep = d.resource_report()
        rows.append(
            {
                "arith": label,
                "ms": d.latency_ms(),
                "bram": rep.bram,
                "dsp": rep.dsp,
                "power_w": ip_power_w(rep, activity=arith.lane.activity),
                "fits": rep.fits(),
            }
        )
    return rows


def test_ablation_arithmetic(benchmark):
    rows = benchmark.pedantic(_run, rounds=3, iterations=1)
    show(
        "Ablation — datapath arithmetic at (512, 3, 3)",
        format_table(
            ["arithmetic", "latency ms", "BRAM", "DSP", "IP power W", "fits"],
            [[r["arith"], f"{r['ms']:.2f}", r["bram"], r["dsp"],
              f"{r['power_w']:.2f}", "yes" if r["fits"] else "NO"]
             for r in rows],
        ),
    )
    by = {r["arith"]: r for r in rows}
    f32, f16 = by["float32"], by["float16"]
    fx = by["fixed 32(16)-24(8)"]
    # latency / DSP / power ordering: fixed < float16 < float32
    assert fx["ms"] < f16["ms"] < f32["ms"]
    assert fx["dsp"] < f16["dsp"] < f32["dsp"]
    assert fx["power_w"] < f16["power_w"] < f32["power_w"]
    # narrower fixed formats shrink BRAM further (same speed: II fixed)
    assert by["fixed 16(8)-12(4)"]["bram"] < fx["bram"]
    # every point on the sweep fits the ZCU104 with the shared buffer
    assert all(r["fits"] for r in rows)
