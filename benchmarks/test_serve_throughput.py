"""Serving-layer benchmark: 1 vs N replicas under deterministic load.

Three claims, in decreasing strictness:

1. **Correctness is unconditional** — served responses are bit-exact
   with a direct :class:`~repro.runtime.InferenceSession`, and no run
   ever leaves a hung future.  Asserted on every machine.
2. **Overload is bounded** — at ~2x one replica's calibrated capacity
   the admission queue's high-water mark never exceeds its bound and
   the overflow is shed with typed errors.  Asserted on every machine.
3. **Replicas scale** — an N-replica *process-mode* pool (fork + pipe
   IPC, one OS process per replica) sustains >= 1.6x the completed
   throughput of a single replica on the fused backend.  Only asserted
   when the machine has >= 3 usable cores: a 1-core box cannot scale
   anything, and on exactly 2 cores the collector/loadgen threads
   compete with the two replica processes, making a hard 1.6x gate a
   coin flip (typical of shared 2-vCPU CI runners).  Below the gate
   the numbers are printed but not asserted.

Runs standalone:

    pytest benchmarks/test_serve_throughput.py -q -s
"""

import os

import numpy as np
import pytest

from repro.models import build_model
from repro.runtime import InferenceSession
from repro.serve import Server, arrival_offsets, calibrate_rate, run_load

from _artifacts import record_bench
from conftest import show

PROFILE = "tiny"
BACKEND = "fused"
N_REPLICAS = 2
DURATION_S = 2.0
SEED = 0

CORES = len(os.sched_getaffinity(0))
# process replicas only beat one thread with a second core to run on
CAN_FORK = CORES >= 2
# hard-asserting 1.6x additionally needs a core for the serving-layer
# threads (collector + loadgen), or the gate flakes on 2-vCPU runners
GATE_SCALING = CORES >= 3


def _samples(n=32):
    rng = np.random.default_rng(SEED)
    return rng.standard_normal((n, 3, 32, 32)).astype(np.float32)


def _serve_under_load(n_replicas, rate_hz, *, mode, duration_s=DURATION_S,
                      **server_kw):
    """Build a server, replay a seeded schedule, return the LoadReport."""
    kw = dict(
        backends=BACKEND,
        mode=mode,
        queue_capacity=32,
        max_batch_size=8,
        shed_policy="reject",
    )
    kw.update(server_kw)
    server = Server.build("ode_botnet", PROFILE, n_replicas, seed=SEED, **kw)
    try:
        offsets = arrival_offsets(rate_hz, duration_s, seed=SEED)
        report = run_load(server, _samples(), offsets, seed=SEED)
        queue_snap = server.metrics()["queue"]
    finally:
        server.close()
    return report, queue_snap


def test_served_responses_bit_exact_and_never_hang():
    x = _samples(8)
    direct = InferenceSession(
        build_model("ode_botnet", profile=PROFILE, seed=SEED,
                    inference=True),
        backend=BACKEND,
    ).predict_batch(x)
    with Server.build("ode_botnet", PROFILE, N_REPLICAS, seed=SEED,
                      backends=BACKEND, max_batch_size=8,
                      max_wait_ms=20.0) as server:
        futures = [server.submit(xi) for xi in x]
        rows = np.stack([f.result(timeout=120) for f in futures])
    # fused BLAS rounding varies with batch split, never beyond this
    np.testing.assert_allclose(rows, direct, rtol=1e-12, atol=1e-9)


def test_overload_sheds_with_bounded_queue_and_zero_hangs():
    with Server.build("ode_botnet", PROFILE, 1, seed=SEED,
                      backends=BACKEND, queue_capacity=16,
                      max_batch_size=8, shed_policy="reject") as server:
        per_replica = calibrate_rate(server, _samples(1)[0], seed=SEED)
    report, queue_snap = _serve_under_load(
        1, 2.0 * per_replica, mode="thread", queue_capacity=16,
    )
    show(
        "Serve overload smoke (1 replica, 2x calibrated capacity)",
        f"offered {report.offered} -> completed {report.completed}, "
        f"shed {report.shed}, deadline {report.deadline_exceeded}\n"
        f"hung {report.hung}, errors {report.errors}, "
        f"queue high-water {queue_snap['high_water']} (bound 16)",
    )
    assert report.hung == 0, "serving layer hung a future under overload"
    assert report.errors == 0, report.error_examples
    assert queue_snap["high_water"] <= 16, "admission bound did not hold"
    assert report.shed > 0, "2x load on a bounded queue must shed"
    assert report.completed > 0


def test_n_replica_scaling():
    mode = "process" if CAN_FORK else "thread"
    # common offered rate: enough to saturate one replica so the extra
    # replicas have work to win on, finite so the run stays ~2s/leg
    with Server.build("ode_botnet", PROFILE, 1, seed=SEED,
                      backends=BACKEND, mode=mode) as server:
        per_replica = calibrate_rate(server, _samples(1)[0], seed=SEED)
    rate = 1.8 * per_replica

    single, _ = _serve_under_load(1, rate, mode=mode)
    multi, _ = _serve_under_load(N_REPLICAS, rate, mode=mode)

    for leg, report in (("1 replica", single), (f"{N_REPLICAS} replicas",
                                                multi)):
        assert report.hung == 0, f"{leg}: hung futures"
        assert report.errors == 0, f"{leg}: {report.error_examples}"
        assert report.completed > 0, f"{leg}: nothing completed"

    scaling = multi.achieved_rate / single.achieved_rate
    show(
        f"Serve replica scaling ({mode} mode, {BACKEND} backend, "
        f"{CORES} core(s))",
        f"offered rate       : {rate:8.1f} samples/s "
        f"(1.8x calibrated single-replica capacity)\n"
        f"1 replica          : {single.achieved_rate:8.1f}/s  "
        f"p95 {single.latency_percentile(95):7.1f} ms  "
        f"(shed {single.shed})\n"
        f"{N_REPLICAS} replicas         : {multi.achieved_rate:8.1f}/s  "
        f"p95 {multi.latency_percentile(95):7.1f} ms  "
        f"(shed {multi.shed})\n"
        f"scaling            : {scaling:.2f}x "
        f"(gate: >= 1.6x, "
        f"{'ON' if GATE_SCALING else 'OFF — needs >= 3 cores'})",
    )
    record_bench("serve_throughput", {
        "model": "ode_botnet",
        "mode": mode,
        "backend": BACKEND,
        "offered_rate_hz": rate,
        "single_replica_rate_hz": single.achieved_rate,
        "multi_replica_rate_hz": multi.achieved_rate,
        "n_replicas": N_REPLICAS,
        "scaling": scaling,
        "gate_active": GATE_SCALING,
        "required_scaling": 1.6,
    }, gate_skip_reason=None if GATE_SCALING else (
        f"only {CORES} usable core(s); the 1.6x gate needs >= 3"
    ))

    if not GATE_SCALING:
        pytest.skip(
            f"only {CORES} usable core(s): the {N_REPLICAS} replica "
            f"processes plus the collector/loadgen threads need >= 3 "
            f"cores before a hard 1.6x scaling gate is reliable "
            f"(numbers printed above)"
        )
    assert scaling >= 1.6, (
        f"{N_REPLICAS} process replicas only {scaling:.2f}x one replica "
        f"on {CORES} cores (expected >= 1.6x)"
    )
