"""Table VII: FPGA resource utilisation of the deployed MHSA builds."""

from conftest import show

from repro.experiments import format_table, table7_resource_utilization


def test_table7_resource_utilization(benchmark):
    rows = benchmark.pedantic(table7_resource_utilization, rounds=3, iterations=1)
    show(
        "Table VII — deployed accelerator builds",
        format_table(
            ["config", "BRAM", "util", "DSP", "FF", "LUT",
             "paper BRAM", "paper DSP"],
            [[r["config"], r["bram"], f"{r['bram_util']:.0%}", r["dsp"],
              r["ff"], r["lut"], r["paper_bram"], r["paper_dsp"]]
             for r in rows],
        ),
    )
    assert all(r["fits"] for r in rows)
    by = {r["config"]: r for r in rows}
    bot_fl = by["BoTNet (512,3,3) float"]
    bot_fx = by["BoTNet (512,3,3) fixed"]
    pro_fl = by["Proposed (64,6,6) float"]
    pro_fx = by["Proposed (64,6,6) fixed"]
    # fixed point reduces DSP/FF/LUT significantly at both geometries
    assert bot_fx["dsp"] * 4 < bot_fl["dsp"]
    assert pro_fx["dsp"] * 4 < pro_fl["dsp"]
    assert bot_fx["ff"] < bot_fl["ff"]
    assert pro_fx["lut"] < pro_fl["lut"]
    # the proposed geometry needs less BRAM than BoTNet's (smaller D)
    assert pro_fx["bram"] < bot_fx["bram"]
