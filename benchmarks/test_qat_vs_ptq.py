"""Extension: quantization-aware training vs post-training quantization.

Table VIII evaluates *post-training* quantisation (PTQ).  The standard
remedy for its narrow-format collapse — used by the paper's cited VAQF
[20] — is QAT: expose the target number grid during training via the
straight-through estimator.  This bench trains the proposed model both
ways and evaluates each under true fixed-point MHSA inference at an
aggressive 4-bit format.

(At this model's scale the ODE residual path already absorbs most MHSA
quantisation error, so the PTQ baseline degrades only mildly; the bench
asserts non-inferiority of QAT plus the mechanism itself.)
"""

from conftest import show

from repro.experiments import format_table
from repro.experiments.accuracy import _loaders
from repro.experiments.quantization import _eval_batch
from repro.fixedpoint import QFormat, error_statistics, prepare_qat
from repro.models import build_model
from repro.models.registry import PROFILES
from repro.train import SGD, CosineAnnealingWarmRestarts, Trainer

FORMAT = "4(2)-3(2)"
EPOCHS = 6
N_TRAIN = 30


def _train(qat):
    size = PROFILES["tiny"]["input_size"]
    model = build_model("ode_botnet", profile="tiny", seed=0)
    if qat:
        prepare_qat(model, QFormat(4, 2), QFormat(3, 2))
    train_loader, test_loader = _loaders(size, N_TRAIN, 15, 32, 0,
                                         augment=False)
    opt = SGD(model.parameters(), lr=0.05, momentum=0.9, weight_decay=1e-4)
    trainer = Trainer(model, opt, CosineAnnealingWarmRestarts(opt, T_0=10))
    trainer.fit(train_loader, test_loader, epochs=EPOCHS)
    return model


def _run():
    images, labels = _eval_batch("tiny", 20, 0)
    rows = []
    for label, qat in (("float training + PTQ", False),
                       ("QAT training", True)):
        model = _train(qat)
        model.eval()
        stats = error_statistics(model, images, labels, FORMAT)
        # float-path accuracy of the same model for reference
        wide = error_statistics(model, images, labels, "32(16)-24(8)")
        rows.append(
            {
                "method": label,
                "float_acc": wide.accuracy * 100,
                "fixed_acc": stats.accuracy * 100,
            }
        )
    return rows


def test_qat_vs_ptq(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    show(
        f"QAT vs PTQ at the {FORMAT} format (tiny, {EPOCHS} epochs)",
        format_table(
            ["method", "acc % (wide fmt)", f"acc % ({FORMAT} fixed)"],
            [[r["method"], f"{r['float_acc']:.1f}", f"{r['fixed_acc']:.1f}"]
             for r in rows],
        ),
    )
    ptq, qat = rows
    # both trainings succeed
    assert ptq["float_acc"] > 60
    assert qat["float_acc"] > 60
    # QAT is non-inferior under true fixed-point inference (typically
    # strictly better; margin allows seed noise)
    assert qat["fixed_acc"] >= ptq["fixed_acc"] - 3.0
