"""Tests for :mod:`repro.lint` — rule engine, shape checker and CLI.

Layout mirrors the package:

* per-rule fixture pairs — one snippet that must fire the rule and one
  that must stay quiet, run through :func:`repro.lint.lint_text`;
* engine mechanics — suppression comments, domain scoping, select /
  ignore filtering, parse-error handling;
* shape checker — clean walks of the real ODENet family (module,
  packed-plan and quantized paths), plus the deliberate failures the
  checker exists for: a mis-sized MHSA head split, broken conv
  geometry, non-shape-preserving ODE dynamics and a Q-format
  accumulator overflow;
* CLI — exit-code contract and the JSON report format.
"""

import json
import textwrap

import numpy as np
import pytest

from repro.fixedpoint import QFormat
from repro.fixedpoint.quantized_model import QuantizedODENetExecutor
from repro.lint import (
    Severity,
    all_rules,
    check_fixed_point,
    check_model,
    check_plan,
    check_quantized,
    lint_text,
)
from repro.lint.cli import main
from repro.models import build_model
from repro.nn.module import Parameter
from repro.runtime.engine import ModulePlan, PackedODENet


def _rules_fired(text, *, rule, rel="", domain="library"):
    diags = lint_text(textwrap.dedent(text), rel=rel, domain=domain,
                      select=[rule])
    return [d.rule for d in diags]


def assert_fires(rule, text, **kwargs):
    assert rule in _rules_fired(text, rule=rule, **kwargs), (
        f"{rule} did not fire on:\n{textwrap.dedent(text)}"
    )


def assert_quiet(rule, text, **kwargs):
    assert not _rules_fired(text, rule=rule, **kwargs), (
        f"{rule} fired unexpectedly on:\n{textwrap.dedent(text)}"
    )


# ----------------------------------------------------------------------
# per-rule fixtures: (rule, bad snippet, good snippet, lint_text kwargs)
# ----------------------------------------------------------------------
RULE_FIXTURES = [
    (
        "RNG001",
        """\
        import numpy as np
        x = np.random.rand(3)
        """,
        """\
        import numpy as np
        rng = np.random.default_rng(0)
        x = rng.random(3)
        """,
        {},
    ),
    (
        "RNG001",
        """\
        from numpy.random import randn
        x = randn(3)
        """,
        """\
        from numpy.random import default_rng
        x = default_rng(0).random(3)
        """,
        {},
    ),
    (
        "HOT001",
        """\
        import numpy as np
        def forward(a, b):
            return np.matmul(a, b)
        """,
        """\
        from .. import kernels
        def forward(a, b):
            return kernels.matmul(a, b)
        """,
        {"rel": "nn/functional.py"},
    ),
    (
        "CMP001",
        """\
        import numpy as np
        def scale_shift(x, scale, shift):
            out = np.empty(x.shape, x.dtype)
            np.multiply(x, scale, out=out)
            np.add(out, shift, out=out)
            return out
        """,
        """\
        import numpy as np
        def scale_shift(x, scale, shift, out):
            np.multiply(x, scale, out=out)
            np.add(out, shift, out=out)
        """,
        {"rel": "compile/steps.py"},
    ),
    (
        "CMP001",
        """\
        def merge(b, out):
            tmp = b.cat.copy()
            out[:] = tmp
        """,
        """\
        import numpy as np
        def merge(b, out):
            np.copyto(out, b.cat)
        """,
        {"rel": "compile/steps.py"},
    ),
    (
        "SEAM002",
        """\
        def out(h, kh, sh, ph):
            return (h + 2 * ph - kh) // sh + 1
        """,
        """\
        from ..kernels import shapes
        def out(h, w, kh, kw, sh, sw, ph, pw):
            return shapes.conv_out_size(h, w, kh, kw, sh, sw, ph, pw)
        """,
        {"rel": "nn/layers.py"},
    ),
    (
        "SEAM003",
        """\
        import numpy as np
        def patches(x):
            return np.lib.stride_tricks.as_strided(x, (2, 2), (8, 8))
        """,
        """\
        from ..kernels import shapes
        def patches(x, kh, kw, sh, sw):
            return shapes.as_strided_patches(x, kh, kw, sh, sw)
        """,
        {"rel": "nn/layers.py"},
    ),
    (
        "SEAM004",
        """\
        '''A kernel-seam consumer that skips the seam.'''
        import numpy as np
        """,
        """\
        '''A kernel-seam consumer that routes through the seam.'''
        from .. import kernels
        """,
        {"rel": "tensor/ops_matmul.py"},
    ),
    (
        "DBG001",
        """\
        x = 1  # FIXME: remove before shipping
        """,
        """\
        x = 1  # tuned against Table IV
        """,
        {},
    ),
    (
        "DBG001",
        """\
        def f():
            breakpoint()
        """,
        """\
        def f():
            return 0
        """,
        {},
    ),
    (
        "EXC001",
        """\
        try:
            x = 1
        except:
            x = 2
        """,
        """\
        try:
            x = 1
        except ValueError:
            x = 2
        """,
        {},
    ),
    (
        "EXC002",
        """\
        try:
            x = 1
        except Exception:
            pass
        """,
        """\
        import logging
        try:
            x = 1
        except Exception:
            logging.exception("boom")
        """,
        {},
    ),
    (
        "DOC001",
        """\
        x = 1
        """,
        """\
        '''This module is documented.'''
        x = 1
        """,
        {},
    ),
    (
        "DOC002",
        """\
        '''Docs.'''
        __all__ = ["f"]
        def f():
            return 1
        """,
        """\
        '''Docs.'''
        __all__ = ["f"]
        def f():
            '''Documented export.'''
            return 1
        """,
        {},
    ),
    (
        "DEP001",
        """\
        def run(layer, x):
            return layer.forward_numpy(x)
        """,
        """\
        def run(layer, x):
            return layer.forward(x)
        """,
        {},
    ),
    (
        "MUT001",
        """\
        def step(p, g, lr):
            p.data -= lr * g
        """,
        """\
        def step(p, g, lr):
            p.data = p.data - lr * g
        """,
        {},
    ),
    (
        "SRV001",
        """\
        import numpy as np
        def jitter(x):
            rng = np.random.default_rng()
            return x + rng.standard_normal(x.shape)
        """,
        """\
        import numpy as np
        def jitter(x, seed):
            rng = np.random.default_rng(seed)
            return x + rng.standard_normal(x.shape)
        """,
        {"rel": "serve/pool.py"},
    ),
    (
        "SRV001",
        """\
        import numpy as np
        def schedule(rate):
            rng = np.random.default_rng(0)
            return rng.exponential(1.0 / rate, 8)
        """,
        """\
        import numpy as np
        def schedule(rate, seed):
            rng = np.random.default_rng(seed)
            return rng.exponential(1.0 / rate, 8)
        """,
        {"rel": "serve/loadgen.py"},
    ),
    (
        "SRV001",
        """\
        import numpy as np
        def sample(tap):
            rng = np.random.default_rng()
            return tap.sample(8, rng)
        """,
        """\
        import numpy as np
        def sample(tap, seed):
            rng = np.random.default_rng(seed)
            return tap.sample(8, rng)
        """,
        {"rel": "adapt/online.py"},
    ),
    (
        "SRV001",
        """\
        import numpy as np
        def shuffle(n):
            rng = np.random.default_rng()
            return rng.permutation(n)
        """,
        """\
        import numpy as np
        def shuffle(n, seed):
            rng = np.random.default_rng(seed)
            return rng.permutation(n)
        """,
        {"rel": "train/trainer.py"},
    ),
    (
        "SRV002",
        """\
        def dispatch(run, futures):
            try:
                run()
            except Exception:
                return None
        """,
        """\
        def dispatch(run, futures):
            try:
                run()
            except Exception as exc:
                for f in futures:
                    f.set_exception(exc)
        """,
        {"rel": "serve/scheduler.py"},
    ),
    (
        "TRC001",
        """\
        import time
        def measure(run):
            t0 = time.time()
            run()
            return time.time() - t0
        """,
        """\
        import time
        def measure(run):
            t0 = time.perf_counter()
            run()
            return time.perf_counter() - t0
        """,
        {"rel": "serve/scheduler.py"},
    ),
    (
        "TRC001",
        """\
        from time import time as now
        def stamp():
            return now()
        """,
        """\
        from time import perf_counter as now
        def stamp():
            return now()
        """,
        {"rel": "runtime/session.py"},
    ),
    (
        "QNT001",
        """\
        import numpy as np
        def fixed_global_avgpool(x, fmt):
            acc = x.sum(axis=(2, 3))
            n = x.shape[2] * x.shape[3]
            return fmt.saturate(np.rint(acc / n).astype(np.int64))
        """,
        """\
        from .ops import div_round_half_even
        def fixed_global_avgpool(x, fmt):
            acc = x.sum(axis=(2, 3))
            n = x.shape[2] * x.shape[3]
            return fmt.saturate(div_round_half_even(acc, n))
        """,
        {"rel": "fixedpoint/quantized_layers.py"},
    ),
    (
        "QNT001",
        """\
        import numpy as np
        def fixed_scale_shift(raw, fmt):
            return np.clip(raw.astype(np.float64), fmt.min_raw, fmt.max_raw)
        """,
        """\
        import numpy as np
        def fixed_scale_shift(raw, fmt):
            return np.clip(raw, fmt.min_raw, fmt.max_raw)
        """,
        {"rel": "fixedpoint/ops.py"},
    ),
]


class TestRuleFixtures:
    @pytest.mark.parametrize(
        "rule,bad,good,kwargs",
        RULE_FIXTURES,
        ids=[f"{r}-{i}" for i, (r, _, _, _) in enumerate(RULE_FIXTURES)],
    )
    def test_bad_fires_good_quiet(self, rule, bad, good, kwargs):
        assert_fires(rule, bad, **kwargs)
        assert_quiet(rule, good, **kwargs)

    def test_every_registered_rule_has_a_fixture(self):
        covered = {r for r, _, _, _ in RULE_FIXTURES}
        registered = {rule.id for rule in all_rules()}
        assert registered <= covered, registered - covered


class TestEngine:
    def test_suppression_comment(self):
        src = "def step(p, g):\n    p.data -= g  # repro-lint: ignore[MUT001] optimizer step\n"
        assert not lint_text(src, select=["MUT001"])

    def test_suppression_is_rule_specific(self):
        src = "def step(p, g):\n    p.data -= g  # repro-lint: ignore[RNG001] wrong rule\n"
        assert _rules_fired(src, rule="MUT001")

    def test_wildcard_suppression(self):
        src = "def step(p, g):\n    p.data -= g  # repro-lint: ignore[*] trusted line\n"
        assert not lint_text(src, select=["MUT001"])

    def test_domain_scoping_rng_rule_skips_tests(self):
        src = "import numpy as np\nx = np.random.rand(3)\n"
        assert _rules_fired(src, rule="RNG001", domain="library")
        assert not _rules_fired(src, rule="RNG001", domain="tests")

    def test_seeded_rng_scope_bounds_srv001(self):
        # SRV001 polices serve/, adapt/ and train/ — the paths where an
        # unseeded default_rng() breaks replay determinism — and stays
        # quiet elsewhere (RNG001 covers general library hygiene)
        from repro.lint.rules_serve import SEEDED_RNG_SCOPE

        assert set(SEEDED_RNG_SCOPE) == {"serve/", "adapt/", "train/"}
        src = (
            "import numpy as np\n"
            "def draw():\n"
            "    rng = np.random.default_rng()\n"
            "    return rng.random(3)\n"
        )
        for scope in SEEDED_RNG_SCOPE:
            assert _rules_fired(src, rule="SRV001",
                                rel=f"{scope}mod.py")
        assert not _rules_fired(src, rule="SRV001", rel="data/mod.py")

    def test_bare_except_fires_in_every_domain(self):
        src = "try:\n    x = 1\nexcept:\n    x = 2\n"
        for domain in ("library", "tests", "examples"):
            assert _rules_fired(src, rule="EXC001", domain=domain)

    def test_ignore_filter(self):
        src = "import numpy as np\nx = np.random.rand(3)\n"
        assert not lint_text(src, ignore=["RNG001", "DOC001", "HOT001"])

    def test_syntax_error_reports_parse_diagnostic(self):
        diags = lint_text("def broken(:\n")
        assert [d.rule for d in diags] == ["PARSE"]
        assert diags[0].severity is Severity.ERROR

    def test_diagnostic_json_roundtrip(self):
        (diag,) = lint_text("x = 1  # FIXME\n", select=["DBG001"])
        record = diag.to_dict()
        assert record["rule"] == "DBG001"
        assert record["severity"] == "error"
        assert json.dumps(record)  # serialisable


# ----------------------------------------------------------------------
# shape / dtype / Q-format checker
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def tiny_model():
    model = build_model("ode_botnet", profile="tiny", seed=0)
    model.eval()
    return model


def _fresh_tiny():
    model = build_model("ode_botnet", profile="tiny", seed=0)
    model.eval()
    return model


class TestShapeChecker:
    def test_shipped_model_is_clean(self, tiny_model):
        assert check_model(tiny_model) == []

    def test_module_plan_is_clean(self, tiny_model):
        assert check_plan(ModulePlan(tiny_model)) == []

    def test_packed_plan_is_clean(self, tiny_model):
        plan = PackedODENet(tiny_model)
        assert check_plan(plan, (3, 32, 32)) == []

    def test_packed_plan_requires_input_shape(self, tiny_model):
        with pytest.raises(ValueError, match="input_shape"):
            check_plan(PackedODENet(tiny_model))

    def test_missized_mhsa_head_split(self):
        model = _fresh_tiny()
        model.block3.func.mhsa.heads = 5  # 16 channels % 5 != 0
        diags = check_model(model)
        assert any(
            d.rule == "SHP001" and "head split" in d.message for d in diags
        ), [d.message for d in diags]

    def test_broken_conv_geometry(self):
        model = _fresh_tiny()
        w = model.down1.conv.weight.data
        model.down1.conv.weight = Parameter(
            np.zeros((w.shape[0], w.shape[1] - 1) + w.shape[2:], dtype=w.dtype)
        )
        diags = check_model(model)
        assert any(
            d.rule == "SHP001" and "down1" in d.message for d in diags
        ), [d.message for d in diags]

    def test_non_shape_preserving_ode_dynamics(self):
        model = _fresh_tiny()
        pw = model.block1.func.conv2.conv.pointwise
        w = pw.weight.data  # (C_out, C_in, 1, 1): widen the output
        pw.weight = Parameter(
            np.zeros((w.shape[0] + 1,) + w.shape[1:], dtype=w.dtype)
        )
        pw.bias = Parameter(np.zeros(w.shape[0] + 1, dtype=w.dtype))
        diags = check_model(model)
        assert any(
            d.rule == "SHP001" and "shape" in d.message and "block1" in d.message
            for d in diags
        ), [d.message for d in diags]

    def test_dtype_mixing_flagged(self, tiny_model):
        diags = check_model(tiny_model, dtype="float64")
        assert any(d.rule == "SHP002" for d in diags)

    def test_qformat_overflow_is_error(self, tiny_model):
        diags = check_fixed_point(tiny_model, QFormat(48, 24), QFormat(32, 16))
        errors = [d for d in diags if d.rule == "SHP003"
                  and d.severity is Severity.ERROR]
        assert errors, [d.message for d in diags]
        assert any("wraps silently" in d.message for d in errors)

    def test_paper_formats_flag_feature_by_feature_worst_case(self, tiny_model):
        # the paper's widest pair is provably safe at every feature x param
        # site (ops.py's <= 2^55 argument) but the MHSA QK^T / attn x V
        # contractions multiply two 32-bit features — worst case 65 bits
        diags = check_fixed_point(tiny_model, QFormat(32, 16), QFormat(24, 8))
        errors = [d for d in diags if d.severity is Severity.ERROR]
        assert errors and all("mhsa" in d.message for d in errors)

    def test_narrow_formats_are_clean(self, tiny_model):
        diags = check_fixed_point(tiny_model, QFormat(16, 8), QFormat(12, 4))
        assert diags == []

    def test_check_quantized_executor(self, tiny_model):
        executor = QuantizedODENetExecutor(
            tiny_model, QFormat(16, 8), QFormat(12, 4)
        )
        assert check_quantized(executor) == []


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


class TestCli:
    def _write(self, tmp_path, name, text):
        path = tmp_path / name
        path.write_text(textwrap.dedent(text))
        return str(path)

    def test_clean_file_exits_zero(self, tmp_path, capsys):
        path = self._write(
            tmp_path, "clean.py",
            """\
            '''A documented module.'''
            import numpy as np
            rng = np.random.default_rng(0)
            """,
        )
        assert main([path]) == 0
        assert "0 error(s)" in capsys.readouterr().out

    def test_error_finding_exits_one(self, tmp_path, capsys):
        path = self._write(
            tmp_path, "dirty.py",
            """\
            '''A documented module.'''
            import numpy as np
            x = np.random.rand(3)
            """,
        )
        assert main([path]) == 1
        assert "RNG001" in capsys.readouterr().out

    def test_no_paths_is_usage_error(self, capsys):
        assert main([]) == 2

    def test_missing_path_is_usage_error(self, tmp_path, capsys):
        assert main([str(tmp_path / "nope")]) == 2

    def test_unknown_select_is_usage_error(self, tmp_path, capsys):
        path = self._write(tmp_path, "ok.py", "'''Docs.'''\n")
        assert main([path, "--select", "NOPE999"]) == 2

    def test_json_format(self, tmp_path, capsys):
        path = self._write(
            tmp_path, "dirty.py",
            """\
            '''A documented module.'''
            x = 1  # FIXME
            """,
        )
        assert main([path, "--format", "json"]) == 1
        report = json.loads(capsys.readouterr().out)
        assert report["version"] == 1
        assert [d["rule"] for d in report["diagnostics"]] == ["DBG001"]
        assert report["summary"]["errors"] == 1

    def test_output_file_always_json(self, tmp_path, capsys):
        path = self._write(tmp_path, "ok.py", "'''Docs.'''\n")
        out = tmp_path / "report.json"
        assert main([path, "--output", str(out)]) == 0
        report = json.loads(out.read_text())
        assert report["diagnostics"] == []
        assert report["summary"]["files_scanned"] == 1

    def test_select_limits_rules(self, tmp_path):
        path = self._write(
            tmp_path, "dirty.py",
            """\
            import numpy as np
            x = np.random.rand(3)
            """,
        )
        # module docstring missing too, but DOC001 is deselected
        assert main([path, "--select", "DOC001"]) == 1
        assert main([path, "--select", "RNG001"]) == 1
        assert main([path, "--select", "DEP001"]) == 0

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in all_rules():
            assert rule.id in out
