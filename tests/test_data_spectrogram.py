"""Tests for the SynthSpectrogram machine-monitoring dataset."""

import numpy as np
import pytest

from repro.data import DataLoader, SynthSpectrogram, make_spectrogram_arrays
from repro.data.spectrogram import CLASSES


class TestGenerator:
    def test_shapes_and_range(self):
        imgs, labels = make_spectrogram_arrays("train", size=32, n_per_class=5)
        assert imgs.shape == (20, 1, 32, 32)
        assert imgs.dtype == np.float32
        assert imgs.min() >= 0.0 and imgs.max() <= 1.0
        assert sorted(np.unique(labels)) == [0, 1, 2, 3]

    def test_deterministic(self):
        a, la = make_spectrogram_arrays("train", size=24, n_per_class=3, seed=4)
        b, lb = make_spectrogram_arrays("train", size=24, n_per_class=3, seed=4)
        np.testing.assert_array_equal(a, b)
        np.testing.assert_array_equal(la, lb)

    def test_splits_differ(self):
        a, _ = make_spectrogram_arrays("train", size=24, n_per_class=3, seed=0)
        b, _ = make_spectrogram_arrays("test", size=24, n_per_class=3, seed=0)
        assert not np.allclose(a, b)

    def test_bearing_fault_has_temporal_impacts(self):
        """Fault class 1 adds broadband impacts: its column-energy series
        must be spikier (higher kurtosis proxy) than normal."""
        imgs, labels = make_spectrogram_arrays("train", size=48, n_per_class=20,
                                               seed=0)

        def spikiness(cls):
            x = imgs[labels == cls][:, 0]       # (N, F, T)
            col = x.mean(axis=1)                # energy over frequency
            col = col - col.mean(axis=1, keepdims=True)
            return float((col ** 4).mean() / (col ** 2).mean() ** 2)

        assert spikiness(1) > spikiness(0)

    def test_imbalance_has_low_frequency_energy(self):
        imgs, labels = make_spectrogram_arrays("train", size=48, n_per_class=20,
                                               seed=0)
        low_band = slice(0, 6)

        def low_energy(cls):
            return float(imgs[labels == cls][:, 0, low_band].mean())

        assert low_energy(2) > low_energy(0)

    def test_class_names(self):
        ds = SynthSpectrogram("train", size=24, n_per_class=2)
        assert ds.class_names == CLASSES
        assert ds.num_classes == 4


class TestModelOnSpectrograms:
    def test_single_channel_ode_botnet_learns(self):
        from repro.models import ode_botnet
        from repro.train import SGD, Trainer

        train = SynthSpectrogram("train", size=32, n_per_class=30, seed=0)
        test = SynthSpectrogram("test", size=32, n_per_class=15, seed=0)
        model = ode_botnet(
            num_classes=4, input_size=32, stage_channels=(8, 16, 32),
            steps=2, mhsa_inner=16, in_channels=1,
            rng=np.random.default_rng(0),
        )
        trainer = Trainer(model, SGD(model.parameters(), lr=0.05))
        hist = trainer.fit(
            DataLoader(train, batch_size=32, shuffle=True, seed=1),
            DataLoader(test, batch_size=60),
            epochs=6,
        )
        assert hist.best()[1] > 0.6  # 4-class chance is 0.25

    def test_in_channels_plumbs_through(self):
        from repro.models import ode_botnet

        model = ode_botnet(num_classes=4, input_size=32,
                           stage_channels=(8, 16, 32), steps=1,
                           mhsa_inner=16, in_channels=1)
        assert model.stem[0].in_channels == 1
