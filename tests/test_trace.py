"""repro.trace: tracer core, exporters, analysis and end-to-end propagation.

The contracts pinned here, in rough order:

* span nesting/parenting via the ambient thread-local context;
* deterministic sampling, bounded ring-buffer retention, thread safety;
* cross-process merge (`Tracer.ingest`) with id remapping;
* Chrome-trace / flame / stage-latency / tail-attribution exporters;
* the full serving chain (request → admission → batch → dispatch →
  session → solver.step → kernel.*) in thread AND process replica
  modes, with trace ids consistent with `serve.metrics`;
* tracing is bit-exact: a traced forward equals the untraced one.
"""

import json
import pickle
import threading

import numpy as np
import pytest

from repro.models import build_model
from repro.runtime import InferenceSession
from repro.serve import Server
from repro.trace import (
    STAGES,
    KernelSpanCollector,
    Span,
    Tracer,
    chrome_trace,
    current_span_id,
    current_tracer,
    flame_summary,
    percentile,
    render_tail_attribution,
    render_trace_report,
    stage_latency,
    tail_attribution,
    write_chrome_trace,
)


def names(tracer_or_spans):
    spans = (
        tracer_or_spans.spans()
        if isinstance(tracer_or_spans, Tracer)
        else tracer_or_spans
    )
    return [s.name for s in spans]


class TestTracerCore:
    def test_nesting_records_parent_links(self):
        tracer = Tracer()
        with tracer.span("outer", items=2):
            with tracer.span("mid"):
                with tracer.span("inner"):
                    pass
            with tracer.span("mid2"):
                pass
        inner, mid, mid2, outer = tracer.spans()
        assert names(tracer) == ["inner", "mid", "mid2", "outer"]
        assert outer.parent_id is None
        assert mid.parent_id == mid2.parent_id == outer.span_id
        assert inner.parent_id == mid.span_id
        assert outer.attrs == {"items": 2}
        assert outer.dur >= mid.dur >= 0.0
        assert outer.thread == threading.current_thread().name

    def test_span_makes_tracer_ambient_and_restores(self):
        tracer = Tracer()
        assert current_tracer() is None
        with tracer.span("outer") as ctx:
            assert current_tracer() is tracer
            assert current_span_id() == ctx.span_id
        assert current_tracer() is None
        assert current_span_id() is None

    def test_exception_closes_span_with_error_attr(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        (span,) = tracer.spans()
        assert span.attrs["error"] == "RuntimeError"
        assert current_tracer() is None  # ambient state restored

    def test_set_adds_attrs_mid_flight(self):
        tracer = Tracer()
        with tracer.span("step") as ctx:
            ctx.set(accepted=True)
        assert tracer.spans()[0].attrs == {"accepted": True}

    def test_add_span_is_retroactive(self):
        tracer = Tracer()
        sid = tracer.add_span("admission", 1.0, 1.5, trace_ids=[7], q=3)
        (span,) = tracer.spans()
        assert span.span_id == sid
        assert (span.t0, span.dur) == (1.0, 0.5)
        assert span.trace_ids == (7,)
        assert span.attrs == {"q": 3}

    def test_activate_installs_tracer_with_fresh_stack(self):
        tracer = Tracer()
        with tracer.span("outer"):
            worker = Tracer()
            with worker.activate():
                assert current_tracer() is worker
                assert current_span_id() is None  # fresh stack
                with worker.span("inner"):
                    pass
            assert current_tracer() is tracer
        assert names(worker) == ["inner"]
        assert worker.spans()[0].parent_id is None

    def test_sampling_is_deterministic_one_in_n(self):
        tracer = Tracer(sample_every=3)
        ids = [tracer.new_trace() for _ in range(7)]
        assert ids == [1, None, None, 2, None, None, 3]

    def test_disabled_tracer_hands_out_no_ids(self):
        tracer = Tracer()
        tracer.enabled = False
        assert tracer.new_trace() is None

    def test_ring_buffer_keeps_newest_and_counts_drops(self):
        tracer = Tracer(capacity=4)
        for i in range(6):
            tracer.add_span(f"s{i}", 0.0, 1.0)
        assert names(tracer) == ["s2", "s3", "s4", "s5"]  # oldest first
        assert tracer.dropped == 2
        assert tracer.completed == 6
        tracer.clear()
        assert tracer.spans() == [] and tracer.dropped == 0

    def test_constructor_validates(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)
        with pytest.raises(ValueError):
            Tracer(sample_every=0)

    def test_span_pickle_roundtrip(self):
        span = Span(3, 1, "kernel.matmul", 0.5, 0.25, "worker",
                    trace_ids=(9,), attrs={"bytes": 64})
        clone = pickle.loads(pickle.dumps(span))
        assert clone.to_dict() == span.to_dict()

    def test_ingest_remaps_ids_and_reparents_roots(self):
        worker = Tracer()
        with worker.activate():
            with worker.span("session"):
                with worker.span("solver.step"):
                    pass
        parent = Tracer()
        with parent.span("dispatch") as dispatch:
            assert parent.ingest(worker.spans()) == 2
        by_name = {s.name: s for s in parent.spans()}
        session, step = by_name["session"], by_name["solver.step"]
        assert session.parent_id == dispatch.span_id  # root re-parented
        assert step.parent_id == session.span_id      # internal link kept
        local_ids = {s.span_id for s in parent.spans()}
        assert len(local_ids) == 3  # no collisions after remap

    def test_append_is_thread_safe(self):
        tracer = Tracer(capacity=64)
        barrier = threading.Barrier(4)

        def hammer():
            barrier.wait()
            for _ in range(100):
                with tracer.span("t"):
                    pass

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert tracer.completed == 400
        assert len(tracer.spans()) == 64
        assert tracer.dropped == 400 - 64

    def test_kernel_span_collector_parents_under_open_span(self):
        tracer = Tracer()
        with tracer.span("solver.step") as step:
            KernelSpanCollector(tracer).record("matmul", 0.001, 512)
        kernel = tracer.spans()[0]
        assert kernel.name == "kernel.matmul"
        assert kernel.parent_id == step.span_id
        assert kernel.attrs == {"bytes": 512}
        assert kernel.dur == pytest.approx(0.001)


class TestExporters:
    def _tracer(self):
        tracer = Tracer()
        with tracer.span("batch", trace_ids=[1], size=2):
            with tracer.span("session"):
                with tracer.span("solver.step", step=0):
                    pass
        return tracer

    def test_chrome_trace_structure(self):
        doc = chrome_trace(self._tracer().spans())
        assert doc["displayTimeUnit"] == "ms"
        events = doc["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        slices = [e for e in events if e["ph"] == "X"]
        assert len(slices) == 3
        assert meta and meta[0]["name"] == "thread_name"
        assert min(e["ts"] for e in slices) == 0  # rebased to earliest
        batch = next(e for e in slices if e["name"] == "batch")
        assert batch["args"]["trace_ids"] == [1]
        assert batch["args"]["size"] == 2
        json.dumps(doc)  # everything must be JSON-serialisable

    def test_write_chrome_trace_roundtrips(self, tmp_path):
        path = tmp_path / "trace.json"
        count = write_chrome_trace(self._tracer().spans(), str(path))
        doc = json.loads(path.read_text())
        assert len(doc["traceEvents"]) == count > 0

    def test_flame_summary_indents_children(self):
        text = flame_summary(self._tracer().spans())
        lines = [l for l in text.splitlines() if l.strip()]
        batch_line = next(l for l in lines if "batch" in l)
        step_line = next(l for l in lines if "solver.step" in l)
        assert len(step_line) - len(step_line.lstrip()) > \
            len(batch_line) - len(batch_line.lstrip())

    def test_render_trace_report_lists_stages(self):
        text = render_trace_report(self._tracer())
        for stage in ("batch", "session", "solver.step"):
            assert stage in text

    def test_percentile_nearest_rank(self):
        values = [10.0, 20.0, 30.0, 40.0]
        assert percentile(values, 0) == 10.0
        assert percentile(values, 50) == 30.0  # index round(0.5 * 3) = 2
        assert percentile(values, 99) == 40.0
        assert percentile([], 50) == 0.0
        assert percentile([5.0], 99) == 5.0

    def test_stage_latency_folds_kernels(self):
        tracer = Tracer()
        tracer.add_span("kernel.matmul", 0.0, 0.010)
        tracer.add_span("kernel.conv2d", 0.0, 0.020)
        tracer.add_span("session", 0.0, 0.040)
        stages = stage_latency(tracer.spans())
        assert stages["kernel.*"]["count"] == 2
        assert stages["kernel.*"]["total_ms"] == pytest.approx(30.0)
        assert stages["session"]["p50_ms"] == pytest.approx(40.0)


def _traced_server(tmp=None, *, mode="thread", sample_every=1, n=4):
    tracer = Tracer(sample_every=sample_every)
    x = np.random.default_rng(0).standard_normal((3, 32, 32)).astype(np.float32)
    server = Server.build(
        "ode_botnet", "tiny", 1, seed=0, tracer=tracer, mode=mode,
        max_batch_size=4, max_wait_ms=1.0,
    )
    with server:
        direct = [server.predict(x, timeout=60) for _ in range(n)]
        metrics = server.metrics()
    return tracer, metrics, direct


class TestServePropagation:
    def test_thread_mode_full_chain(self):
        tracer, metrics, _ = _traced_server()
        spans = tracer.spans()
        kinds = {s.name.split(".")[0] for s in spans}
        assert {"request", "admission", "batch", "dispatch", "session",
                "solver", "kernel"} <= kinds

        # every request span has a unique trace id, matching admissions
        requests = [s for s in spans if s.name == "request"]
        assert len(requests) == 4
        request_ids = sorted(s.trace_ids[0] for s in requests)
        assert request_ids == [1, 2, 3, 4]
        admitted_ids = sorted(
            s.trace_ids[0] for s in spans if s.name == "admission"
        )
        assert admitted_ids == request_ids
        assert all(s.attrs["outcome"] == "completed" for s in requests)

        # batches nest dispatch → session → solver.step → kernel.*
        by_id = {s.span_id: s for s in spans}

        def chain_of(leaf):
            out = []
            while leaf is not None:
                out.append(leaf.name)
                leaf = by_id.get(leaf.parent_id)
            return out[::-1]

        kernel = next(s for s in spans if s.name.startswith("kernel."))
        chain = chain_of(kernel)
        assert chain[0] == "batch" and chain[1] == "dispatch"
        assert "session" in chain

        # the metrics snapshot carries the same trace counters
        trace = metrics["trace"]
        assert trace["requests"] == 4
        assert trace["completed"] == tracer.completed
        assert set(STAGES) <= set(trace["stages"]) | set(STAGES)
        assert trace["stages"]["request"]["count"] == 4

    def test_process_mode_ingests_worker_spans(self):
        tracer, _, _ = _traced_server(mode="process", n=2)
        spans = tracer.spans()
        by_id = {s.span_id: s for s in spans}
        sessions = [s for s in spans if s.name == "session"]
        assert sessions, "worker session spans came back over the pipe"
        for session in sessions:
            assert by_id[session.parent_id].name == "dispatch"
        steps = [s for s in spans if s.name == "solver.step"]
        assert steps and all(
            by_id[s.parent_id].name == "session" for s in steps
        )

    def test_sampling_traces_one_in_n_requests(self):
        tracer, metrics, _ = _traced_server(sample_every=2, n=4)
        requests = [s for s in tracer.spans() if s.name == "request"]
        assert len(requests) == 2  # the 1st and 3rd submits
        assert metrics["trace"]["requests"] == 2

    def test_served_results_bit_exact_with_direct_session(self):
        tracer, _, served = _traced_server()
        session = InferenceSession(
            build_model("ode_botnet", profile="tiny", seed=0,
                        inference=True)
        )
        x = np.random.default_rng(0).standard_normal(
            (3, 32, 32)).astype(np.float32)
        expected = session.predict_batch(x[None])[0]
        for row in served:
            assert np.array_equal(row, expected)

    def test_tail_attribution_decomposes_requests(self):
        tracer, _, _ = _traced_server()
        report = tail_attribution(tracer.spans(), p=99.0)
        assert report["n_requests"] == 4
        assert report["n_tail"] >= 1
        stages = report["stages_ms"]
        assert {"queue", "compute", "dispatch_overhead", "deliver"} == \
            set(stages)
        assert report["dominant"] in stages
        text = render_tail_attribution(report)
        assert "p99" in text and report["dominant"] in text


class TestSessionTracing:
    def test_traced_forward_is_bit_exact_and_spans_complete(self):
        model = build_model("ode_botnet", profile="tiny", seed=0,
                            inference=True)
        x = np.random.default_rng(1).standard_normal(
            (2, 3, 32, 32)).astype(np.float32)
        untraced = InferenceSession(model).predict_batch(x)

        tracer = Tracer()
        traced = InferenceSession(model, trace=tracer).predict_batch(x)
        assert np.array_equal(untraced, traced)

        spans = tracer.spans()
        steps = [s for s in spans if s.name == "solver.step"]
        assert len(steps) == 6  # tiny profile: 3 ODE blocks x 2 steps
        assert sum(1 for s in spans if s.name == "session") == 1
        assert any(s.name.startswith("kernel.") for s in spans)

    def test_kernel_spans_off_keeps_the_rest(self):
        model = build_model("ode_botnet", profile="tiny", seed=0,
                            inference=True)
        x = np.random.default_rng(1).standard_normal(
            (1, 3, 32, 32)).astype(np.float32)
        tracer = Tracer(kernel_spans=False)
        InferenceSession(model, trace=tracer).predict_batch(x)
        spans = tracer.spans()
        assert not any(s.name.startswith("kernel.") for s in spans)
        assert any(s.name == "solver.step" for s in spans)

    def test_ambient_tracer_traces_without_explicit_handoff(self):
        model = build_model("ode_botnet", profile="tiny", seed=0,
                            inference=True)
        session = InferenceSession(model)  # no trace= anywhere
        x = np.random.default_rng(1).standard_normal(
            (1, 3, 32, 32)).astype(np.float32)
        tracer = Tracer()
        with tracer.span("outer"):
            session.predict_batch(x)
        by_name = {s.name for s in tracer.spans()}
        assert "session" in by_name and "solver.step" in by_name
