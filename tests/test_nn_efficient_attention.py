"""Tests for LinearAttention2d and WindowAttention2d."""

import numpy as np
import pytest

from repro import nn
from repro.tensor import Tensor, gradcheck, no_grad


class TestLinearAttention:
    def test_shape_preserved(self, rng):
        m = nn.LinearAttention2d(8, 4, 4, heads=2, rng=rng)
        out = m(Tensor(rng.normal(size=(2, 8, 4, 4)).astype(np.float32)))
        assert out.shape == (2, 8, 4, 4)

    def test_invalid_heads_raises(self, rng):
        with pytest.raises(ValueError):
            nn.LinearAttention2d(10, 4, 4, heads=3, rng=rng)

    def test_invalid_phi_raises(self, rng):
        with pytest.raises(ValueError):
            nn.LinearAttention2d(8, 4, 4, phi="cosine", rng=rng)

    def test_wrong_input_shape_raises(self, rng):
        m = nn.LinearAttention2d(8, 4, 4, rng=rng)
        with pytest.raises(ValueError):
            m(Tensor(np.zeros((1, 8, 5, 5), dtype=np.float32)))

    def test_params_match_mhsa_projections(self, rng):
        """Same 3 D^2 projection cost as MHSA but no position table."""
        m = nn.LinearAttention2d(16, 4, 4, heads=4, rng=rng)
        assert m.num_parameters() == 3 * 16 * 16

    def test_gradients_flow(self, rng):
        m = nn.LinearAttention2d(8, 3, 3, heads=2, out_layernorm=True, rng=rng)
        x = Tensor(rng.normal(size=(1, 8, 3, 3)).astype(np.float32),
                   requires_grad=True)
        m(x).sum().backward()
        assert x.grad is not None
        assert all(p.grad is not None for p in m.parameters())

    def test_gradcheck(self, rng):
        m = nn.LinearAttention2d(4, 2, 2, heads=2, rng=rng)
        for p in m.parameters():
            p.data = p.data.astype(np.float64)
        gradcheck(lambda t: m(t), [rng.normal(size=(1, 4, 2, 2)) * 0.5])

    def test_relu_phi_variant(self, rng):
        m = nn.LinearAttention2d(8, 3, 3, heads=2, phi="relu", rng=rng)
        out = m(Tensor(rng.normal(size=(1, 8, 3, 3)).astype(np.float32)))
        assert np.isfinite(out.data).all()

    def test_output_is_convex_combination_of_values(self, rng):
        """Linear attention weights are positive and normalised, so each
        output coordinate lies within the values' range per head."""
        m = nn.LinearAttention2d(4, 3, 3, heads=1, rng=rng)
        x = rng.normal(size=(1, 4, 3, 3)).astype(np.float32)
        with no_grad():
            tokens = Tensor(x).reshape(1, 4, 9).transpose(0, 2, 1)
            v = (tokens @ m.w_v).data  # (1, 9, 4)
            out = m(Tensor(x)).data.reshape(1, 4, 9).transpose(0, 2, 1)
        eps = 1e-3
        assert (out <= v.max(axis=1, keepdims=True) + eps).all()
        assert (out >= v.min(axis=1, keepdims=True) - eps).all()


class TestWindowAttention:
    def test_shape_preserved(self, rng):
        m = nn.WindowAttention2d(8, 4, 6, heads=2, window=2, rng=rng)
        out = m(Tensor(rng.normal(size=(2, 8, 4, 6)).astype(np.float32)))
        assert out.shape == (2, 8, 4, 6)

    def test_window_must_divide(self, rng):
        with pytest.raises(ValueError):
            nn.WindowAttention2d(8, 5, 5, window=2, rng=rng)

    def test_locality(self, rng):
        """Changing a pixel in one window must not affect other windows
        (the defining property of fixed-pattern attention)."""
        m = nn.WindowAttention2d(4, 4, 4, heads=2, window=2,
                                 pos_enc="none", rng=rng)
        x = rng.normal(size=(1, 4, 4, 4)).astype(np.float32)
        x2 = x.copy()
        x2[0, :, 0, 0] += 5.0  # perturb top-left window only
        with no_grad():
            a = m(Tensor(x)).data
            b = m(Tensor(x2)).data
        # bottom-right window untouched
        np.testing.assert_allclose(a[0, :, 2:, 2:], b[0, :, 2:, 2:], atol=1e-6)
        # top-left window changed
        assert not np.allclose(a[0, :, :2, :2], b[0, :, :2, :2])

    def test_full_window_equals_mhsa_math(self, rng):
        """window == feature map: the result must match MHSA2d with the
        same weights."""
        m_win = nn.WindowAttention2d(8, 3, 3, heads=2, window=3,
                                     pos_enc="none", rng=np.random.default_rng(5))
        m_full = nn.MHSA2d(8, 3, 3, heads=2, pos_enc="none",
                           rng=np.random.default_rng(6))
        for name in ("w_q", "w_k", "w_v"):
            getattr(m_full, name).data[...] = getattr(m_win, name).data
        x = rng.normal(size=(2, 8, 3, 3)).astype(np.float32)
        with no_grad():
            np.testing.assert_allclose(
                m_win(Tensor(x)).data, m_full(Tensor(x)).data,
                rtol=1e-4, atol=1e-5,
            )

    def test_relu_attention_variant(self, rng):
        m = nn.WindowAttention2d(8, 4, 4, heads=2, window=2,
                                 attention_activation="relu",
                                 out_layernorm=True, rng=rng)
        out = m(Tensor(rng.normal(size=(1, 8, 4, 4)).astype(np.float32)))
        assert out.shape == (1, 8, 4, 4)

    def test_gradients_flow(self, rng):
        m = nn.WindowAttention2d(8, 4, 4, heads=2, window=2, rng=rng)
        x = Tensor(rng.normal(size=(1, 8, 4, 4)).astype(np.float32),
                   requires_grad=True)
        m(x).sum().backward()
        assert x.grad is not None
        assert all(p.grad is not None for p in m.parameters())


class TestModelIntegration:
    def test_ode_botnet_with_attention_variants(self, rng):
        from repro.models import build_model

        x = Tensor(rng.normal(size=(1, 3, 32, 32)).astype(np.float32))
        for kind in ("full", "linear", "window"):
            m = build_model("ode_botnet", profile="tiny", attention=kind)
            assert m(x).shape == (1, 10), kind

    def test_unknown_attention_kind_raises(self):
        from repro.ode import MHSABottleneckODEFunc

        with pytest.raises(ValueError):
            MHSABottleneckODEFunc(8, 4, 2, 2, attention="sparse")
