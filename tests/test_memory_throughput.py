"""Tests for the training-memory estimator and accelerator throughput."""

import numpy as np
import pytest

from repro.experiments.designs import FIXED_DEFAULT, botnet_mhsa_design, botnet_mhsa_module
from repro.fpga import MHSAAccelerator
from repro.models import build_model
from repro.profiling import memory_table, training_memory_bytes


class TestTrainingMemory:
    @pytest.fixture
    def block(self):
        return build_model("ode_botnet", profile="paper").block3

    def test_backprop_scales_with_steps(self, block):
        shape = (1, 256, 6, 6)
        m10 = training_memory_bytes(block, shape, "backprop")
        block.steps = 20
        m20 = training_memory_bytes(block, shape, "backprop")
        block.steps = 10
        assert m20 == 2 * m10

    def test_adjoint_independent_of_steps(self, block):
        shape = (1, 256, 6, 6)
        a10 = training_memory_bytes(block, shape, "adjoint")
        block.steps = 40
        a40 = training_memory_bytes(block, shape, "adjoint")
        block.steps = 10
        assert a10 == a40

    def test_ordering(self, block):
        shape = (2, 256, 6, 6)
        rows = {r["strategy"]: r["bytes"] for r in memory_table(block, shape)}
        assert rows["adjoint"] < rows["checkpoint"] < rows["backprop"]

    def test_ratio_column(self, block):
        rows = memory_table(block, (1, 256, 6, 6))
        assert rows[0]["ratio"] == 1.0
        assert all(0 < r["ratio"] <= 1.0 for r in rows)

    def test_conv_block_supported(self):
        model = build_model("odenet", profile="paper")
        b = training_memory_bytes(model.block1, (1, 64, 24, 24), "backprop")
        assert b > 0

    def test_unknown_strategy_raises(self, block):
        with pytest.raises(ValueError):
            training_memory_bytes(block, (1, 256, 6, 6), "magic")

    def test_batch_scales_linearly(self, block):
        b1 = training_memory_bytes(block, (1, 256, 6, 6), "backprop")
        b4 = training_memory_bytes(block, (4, 256, 6, 6), "backprop")
        assert b4 == 4 * b1


class TestThroughput:
    def test_batch_one_matches_latency(self):
        acc = MHSAAccelerator(botnet_mhsa_module(), botnet_mhsa_design(FIXED_DEFAULT))
        tput = acc.throughput_per_s(batch=1)
        assert tput == pytest.approx(1.0 / (acc.latency().total_ms * 1e-3), rel=1e-9)

    def test_pipelining_improves_throughput(self):
        acc = MHSAAccelerator(botnet_mhsa_module(), botnet_mhsa_design(FIXED_DEFAULT))
        t1 = acc.throughput_per_s(batch=1)
        t16 = acc.throughput_per_s(batch=16)
        assert t16 > t1
        # bounded by the steady-state rate (driver fully hidden)
        lat = acc.latency()
        ceiling = 1.0 / ((lat.kernel_ms + lat.dma_ms) * 1e-3)
        assert t16 < ceiling
