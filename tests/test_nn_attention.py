"""Tests for MHSA2d and position encodings (paper Sec. III-A / V-A)."""

import numpy as np
import pytest

from repro import nn
from repro.nn import functional
from repro.tensor import Tensor, gradcheck, no_grad


def make_mhsa(rng, **kw):
    defaults = dict(
        channels=8, height=3, width=3, heads=2, pos_enc="relative",
        attention_activation="softmax", out_layernorm=False,
    )
    defaults.update(kw)
    return nn.MHSA2d(rng=rng, **defaults)


class TestConstruction:
    def test_heads_must_divide_channels(self, rng):
        with pytest.raises(ValueError):
            nn.MHSA2d(10, 3, 3, heads=3, rng=rng)

    def test_unknown_pos_enc_raises(self, rng):
        with pytest.raises(ValueError):
            nn.MHSA2d(8, 3, 3, pos_enc="fourier", rng=rng)

    def test_unknown_activation_raises(self, rng):
        with pytest.raises(ValueError):
            nn.MHSA2d(8, 3, 3, attention_activation="gelu", rng=rng)

    def test_param_count_relative(self, rng):
        """3 D^2 projection weights + per-head rel_h/rel_w vectors."""
        m = nn.MHSA2d(64, 6, 6, heads=4, pos_enc="relative", rng=rng)
        expected = 3 * 64 * 64 + 4 * 6 * 16 * 2
        assert m.num_parameters() == expected

    def test_param_count_botnet_config(self, rng):
        """The (512, 3, 3) BoTNet MHSA of Tables I-III."""
        m = nn.MHSA2d(512, 3, 3, heads=4, rng=rng)
        assert m.num_parameters() == 3 * 512 * 512 + 4 * 3 * 128 * 2

    def test_wrong_input_shape_raises(self, rng):
        m = make_mhsa(rng)
        with pytest.raises(ValueError):
            m(Tensor(np.zeros((1, 8, 4, 4), dtype=np.float32)))


class TestForward:
    def test_output_shape_preserved(self, rng):
        m = make_mhsa(rng)
        out = m(Tensor(rng.normal(size=(2, 8, 3, 3)).astype(np.float32)))
        assert out.shape == (2, 8, 3, 3)

    def test_softmax_attention_rows_normalized(self, rng):
        """With softmax attention the output is a convex combination of
        values, so outputs are bounded by value extremes."""
        m = make_mhsa(rng, pos_enc="none")
        x = rng.normal(size=(1, 8, 3, 3)).astype(np.float32)
        out = m(Tensor(x))
        assert np.isfinite(out.data).all()

    def test_relu_attention_runs(self, rng):
        m = make_mhsa(rng, attention_activation="relu", out_layernorm=True)
        out = m(Tensor(rng.normal(size=(1, 8, 3, 3)).astype(np.float32)))
        assert out.shape == (1, 8, 3, 3)

    def test_mhsa2d_eval_matches_tensor(self, rng):
        for act in ("softmax", "relu"):
            for pe in ("relative", "none"):
                m = make_mhsa(
                    rng, attention_activation=act, pos_enc=pe,
                    out_layernorm=(act == "relu"),
                )
                x = rng.normal(size=(2, 8, 3, 3)).astype(np.float32)
                with no_grad():
                    t_out = m(Tensor(x)).data
                np.testing.assert_allclose(
                    t_out, functional.mhsa2d_eval(m, x), rtol=1e-4, atol=1e-5
                )

    def test_gradients_reach_all_params(self, rng):
        m = make_mhsa(rng, attention_activation="relu", out_layernorm=True)
        m(Tensor(rng.normal(size=(1, 8, 3, 3)).astype(np.float32))).sum().backward()
        for name, p in m.named_parameters():
            assert p.grad is not None, name
            assert np.isfinite(p.grad).all(), name

    def test_input_gradcheck(self, rng):
        m = make_mhsa(rng)
        for p in m.parameters():
            p.data = p.data.astype(np.float64)
        gradcheck(lambda x: m(x), [rng.normal(size=(1, 8, 3, 3)) * 0.5])


class TestPermutationProperties:
    def test_without_pos_enc_attention_is_permutation_equivariant(self, rng):
        """Sec. III-A3: self-attention without position encoding is
        equivariant — permuting input positions permutes outputs."""
        m = make_mhsa(rng, pos_enc="none")
        x = rng.normal(size=(1, 8, 3, 3)).astype(np.float32)
        n = 9
        perm = np.random.default_rng(0).permutation(n)
        xt = x.reshape(1, 8, n)
        x_perm = xt[:, :, perm].reshape(1, 8, 3, 3)
        with no_grad():
            out = m(Tensor(x)).data.reshape(1, 8, n)
            out_perm = m(Tensor(x_perm)).data.reshape(1, 8, n)
        np.testing.assert_allclose(out[:, :, perm], out_perm, rtol=1e-4, atol=1e-5)

    def test_relative_pos_enc_breaks_equivariance(self, rng):
        m = make_mhsa(rng, pos_enc="relative")
        x = rng.normal(size=(1, 8, 3, 3)).astype(np.float32)
        n = 9
        perm = np.roll(np.arange(n), 1)
        xt = x.reshape(1, 8, n)
        x_perm = xt[:, :, perm].reshape(1, 8, 3, 3)
        with no_grad():
            out = m(Tensor(x)).data.reshape(1, 8, n)
            out_perm = m(Tensor(x_perm)).data.reshape(1, 8, n)
        assert not np.allclose(out[:, :, perm], out_perm, rtol=1e-3)


class TestRelativePositionEncoding:
    def test_table_shape(self, rng):
        rel = nn.RelativePositionEncoding2d(4, 3, 5, 8, rng=rng)
        assert rel.table().shape == (4, 15, 8)

    def test_table_decomposition(self, rng):
        """R[h, y*W + x] must equal rel_h[h, y] + rel_w[h, x]."""
        rel = nn.RelativePositionEncoding2d(2, 2, 3, 4, rng=rng)
        table = rel.table().data.reshape(2, 2, 3, 4)
        for h in range(2):
            for y in range(2):
                for x in range(3):
                    np.testing.assert_allclose(
                        table[h, y, x],
                        rel.rel_h.data[h, y] + rel.rel_w.data[h, x],
                        rtol=1e-6,
                    )

    def test_gradients_flow_to_both(self, rng):
        rel = nn.RelativePositionEncoding2d(2, 3, 3, 4, rng=rng)
        rel.table().sum().backward()
        assert rel.rel_h.grad is not None
        assert rel.rel_w.grad is not None


class TestSinusoidalEncoding:
    def test_table_values(self):
        enc = nn.SinusoidalPositionEncoding(10, 8)
        assert enc.table.shape == (10, 8)
        # position 0: sin(0)=0 at even dims, cos(0)=1 at odd dims
        np.testing.assert_allclose(enc.table[0, 0::2], 0.0, atol=1e-12)
        np.testing.assert_allclose(enc.table[0, 1::2], 1.0, atol=1e-12)

    def test_bounded(self):
        enc = nn.SinusoidalPositionEncoding(50, 16)
        assert np.abs(enc.table).max() <= 1.0 + 1e-12

    def test_odd_dim_raises(self):
        with pytest.raises(ValueError):
            nn.SinusoidalPositionEncoding(10, 7)

    def test_absolute_mhsa_runs(self, rng):
        m = make_mhsa(rng, pos_enc="absolute")
        out = m(Tensor(rng.normal(size=(1, 8, 3, 3)).astype(np.float32)))
        assert out.shape == (1, 8, 3, 3)
