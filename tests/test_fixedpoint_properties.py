"""Property-based tests (hypothesis) on fixed-point arithmetic invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.fixedpoint import QFormat, fixed_add, fixed_matmul, fixed_relu, requantize

formats = st.tuples(st.integers(8, 32), st.integers(2, 8)).map(
    lambda t: QFormat(t[0], min(t[1], t[0]))
)


@settings(max_examples=60, deadline=None)
@given(formats, st.floats(-1000, 1000, allow_nan=False))
def test_quantize_within_half_lsb_or_saturated(fmt, x):
    raw = fmt.quantize(np.array(x))
    val = fmt.dequantize(raw)
    if fmt.value_min <= x <= fmt.value_max:
        assert abs(val - x) <= fmt.scale / 2 + 1e-12
    else:
        assert val in (fmt.value_min, fmt.value_max)


@settings(max_examples=60, deadline=None)
@given(formats, st.floats(-100, 100, allow_nan=False))
def test_quantize_idempotent(fmt, x):
    once = fmt.roundtrip(np.array(x))
    twice = fmt.roundtrip(once)
    assert once == twice


@settings(max_examples=60, deadline=None)
@given(formats)
def test_raw_bounds_respected(fmt):
    rng = np.random.default_rng(fmt.total_bits * 100 + fmt.int_bits)
    x = rng.uniform(-1e6, 1e6, size=50)
    raw = fmt.quantize(x)
    assert raw.max() <= fmt.raw_max
    assert raw.min() >= fmt.raw_min


@settings(max_examples=40, deadline=None)
@given(st.integers(1, 5), st.integers(1, 5), st.integers(1, 5))
def test_fixed_matmul_error_bound(m, k, n):
    """|fixed - float| <= accumulation of per-element rounding errors."""
    f = QFormat(32, 16)
    rng = np.random.default_rng(m * 25 + k * 5 + n)
    a = rng.uniform(-4, 4, size=(m, k))
    b = rng.uniform(-4, 4, size=(k, n))
    res = f.dequantize(fixed_matmul(f.quantize(a), f, f.quantize(b), f, f))
    # rounding each input by <= LSB/2 propagates as <= k * (|a|+|b|) * LSB
    bound = k * 8 * f.scale + f.scale
    assert np.abs(res - a @ b).max() <= bound


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(-10000, 10000), min_size=1, max_size=20))
def test_relu_nonnegative_and_identity_on_positive(raws):
    raw = np.array(raws, dtype=np.int64)
    out = fixed_relu(raw)
    assert (out >= 0).all()
    np.testing.assert_array_equal(out[raw > 0], raw[raw > 0])


@settings(max_examples=40, deadline=None)
@given(formats, st.floats(-50, 50, allow_nan=False))
def test_requantize_to_wider_format_preserves_value(src, x):
    # widen both total and fractional bits
    dst = QFormat(min(src.total_bits + 10, 62), src.int_bits + 5)
    raw = src.quantize(np.array(x))
    widened = requantize(raw, src, dst)
    assert dst.dequantize(widened) == src.dequantize(raw)


@settings(max_examples=40, deadline=None)
@given(formats, st.floats(-10, 10, allow_nan=False), st.floats(-10, 10, allow_nan=False))
def test_fixed_add_commutative(fmt, x, y):
    a, b = fmt.quantize(np.array(x)), fmt.quantize(np.array(y))
    ab = fixed_add(a, fmt, b, fmt, fmt)
    ba = fixed_add(b, fmt, a, fmt, fmt)
    assert ab == ba
