"""Property-based tests (hypothesis) on fixed-point arithmetic invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.fixedpoint import QFormat, fixed_add, fixed_matmul, fixed_relu, requantize
from repro.fixedpoint.ops import _rescale

formats = st.tuples(st.integers(8, 32), st.integers(2, 8)).map(
    lambda t: QFormat(t[0], min(t[1], t[0]))
)


def _oracle_rescale(raw, from_frac, fmt):
    """Pure-python scalar reference for ``_rescale``: exact round-half-even
    on a power-of-two division, then saturation.

    Uses ``divmod`` (floor quotient, non-negative remainder) so negative
    raws follow the same arithmetic-shift convention as the vectorized
    int64 implementation without sharing any code with it.
    """
    raw = int(raw)
    shift = from_frac - fmt.frac_bits
    if shift <= 0:
        out = raw * (2 ** -shift)
    else:
        quotient, remainder = divmod(raw, 2 ** shift)
        half = 2 ** (shift - 1)
        if remainder > half or (remainder == half and (quotient & 1)):
            quotient += 1
        out = quotient
    return max(fmt.raw_min, min(fmt.raw_max, out))


class TestRescaleAgainstScalarOracle:
    """The vectorized ``_rescale`` must keep exact round-half-even +
    saturation semantics — including negative raws at the shift boundary
    — because the ``quantized`` backend's bit-exactness rests on it."""

    FMT = QFormat(16, 8)

    @pytest.mark.parametrize("shift", range(-8, 9))
    def test_boundary_raws_match_oracle(self, shift):
        fmt = self.FMT
        from_frac = fmt.frac_bits + shift
        step = 2 ** max(shift, 1)
        # exercise exact multiples of the shift step, the half-way tie
        # point, and its one-LSB neighbours — positive and negative
        probes = []
        for base in (0, step, 3 * step, 1000 * step, fmt.raw_max << max(shift, 0)):
            for delta in (-step // 2 - 1, -step // 2, -step // 2 + 1, -1, 0, 1,
                          step // 2 - 1, step // 2, step // 2 + 1):
                probes.append(base + delta)
                probes.append(-(base + delta))
        raw = np.array(sorted(set(probes)), dtype=np.int64)
        got = _rescale(raw, from_frac, fmt)
        want = np.array([_oracle_rescale(r, from_frac, fmt) for r in raw],
                        dtype=np.int64)
        np.testing.assert_array_equal(got, want)

    @settings(max_examples=120, deadline=None)
    @given(formats, st.integers(-8, 8),
           st.lists(st.integers(-(1 << 40), 1 << 40), min_size=1, max_size=16))
    def test_random_raws_match_oracle(self, fmt, shift, raws):
        from_frac = fmt.frac_bits + shift
        raw = np.array(raws, dtype=np.int64)
        got = _rescale(raw, from_frac, fmt)
        want = np.array([_oracle_rescale(r, from_frac, fmt) for r in raws],
                        dtype=np.int64)
        np.testing.assert_array_equal(got, want)

    def test_negative_tie_rounds_to_even(self):
        # -2.5 in raw/2^1 terms: raw=-5, shift=1 → floor pair (-3, r=1)
        # → tie → round to even quotient -2 (not -3): round-half-even,
        # not round-half-away and not truncation.
        fmt = QFormat(16, 8)
        out = _rescale(np.array([-5, -3, 5, 3], dtype=np.int64),
                       fmt.frac_bits + 1, fmt)
        np.testing.assert_array_equal(out, [-2, -2, 2, 2])


@settings(max_examples=60, deadline=None)
@given(formats, st.floats(-1000, 1000, allow_nan=False))
def test_quantize_within_half_lsb_or_saturated(fmt, x):
    raw = fmt.quantize(np.array(x))
    val = fmt.dequantize(raw)
    if fmt.value_min <= x <= fmt.value_max:
        assert abs(val - x) <= fmt.scale / 2 + 1e-12
    else:
        assert val in (fmt.value_min, fmt.value_max)


@settings(max_examples=60, deadline=None)
@given(formats, st.floats(-100, 100, allow_nan=False))
def test_quantize_idempotent(fmt, x):
    once = fmt.roundtrip(np.array(x))
    twice = fmt.roundtrip(once)
    assert once == twice


@settings(max_examples=60, deadline=None)
@given(formats)
def test_raw_bounds_respected(fmt):
    rng = np.random.default_rng(fmt.total_bits * 100 + fmt.int_bits)
    x = rng.uniform(-1e6, 1e6, size=50)
    raw = fmt.quantize(x)
    assert raw.max() <= fmt.raw_max
    assert raw.min() >= fmt.raw_min


@settings(max_examples=40, deadline=None)
@given(st.integers(1, 5), st.integers(1, 5), st.integers(1, 5))
def test_fixed_matmul_error_bound(m, k, n):
    """|fixed - float| <= accumulation of per-element rounding errors."""
    f = QFormat(32, 16)
    rng = np.random.default_rng(m * 25 + k * 5 + n)
    a = rng.uniform(-4, 4, size=(m, k))
    b = rng.uniform(-4, 4, size=(k, n))
    res = f.dequantize(fixed_matmul(f.quantize(a), f, f.quantize(b), f, f))
    # rounding each input by <= LSB/2 propagates as <= k * (|a|+|b|) * LSB
    bound = k * 8 * f.scale + f.scale
    assert np.abs(res - a @ b).max() <= bound


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(-10000, 10000), min_size=1, max_size=20))
def test_relu_nonnegative_and_identity_on_positive(raws):
    raw = np.array(raws, dtype=np.int64)
    out = fixed_relu(raw)
    assert (out >= 0).all()
    np.testing.assert_array_equal(out[raw > 0], raw[raw > 0])


@settings(max_examples=40, deadline=None)
@given(formats, st.floats(-50, 50, allow_nan=False))
def test_requantize_to_wider_format_preserves_value(src, x):
    # widen both total and fractional bits
    dst = QFormat(min(src.total_bits + 10, 62), src.int_bits + 5)
    raw = src.quantize(np.array(x))
    widened = requantize(raw, src, dst)
    assert dst.dequantize(widened) == src.dequantize(raw)


@settings(max_examples=40, deadline=None)
@given(formats, st.floats(-10, 10, allow_nan=False), st.floats(-10, 10, allow_nan=False))
def test_fixed_add_commutative(fmt, x, y):
    a, b = fmt.quantize(np.array(x)), fmt.quantize(np.array(y))
    ab = fixed_add(a, fmt, b, fmt, fmt)
    ba = fixed_add(b, fmt, a, fmt, fmt)
    assert ab == ba
