"""Tests for the HLS kernel generator."""

import pytest

from repro.experiments import FIXED_DEFAULT, FLOAT32
from repro.experiments.designs import botnet_mhsa_design, proposed_mhsa_design
from repro.fpga import generate_hls_kernel


class TestGeneratedKernel:
    def test_fixed_point_types(self):
        src = generate_hls_kernel(botnet_mhsa_design(FIXED_DEFAULT))
        assert "typedef ap_fixed<32, 16> feat_t;" in src
        assert "typedef ap_fixed<24, 8> param_t;" in src

    def test_float_types(self):
        src = generate_hls_kernel(botnet_mhsa_design(FLOAT32))
        assert "typedef float feat_t;" in src

    def test_geometry_constants(self):
        src = generate_hls_kernel(proposed_mhsa_design(FIXED_DEFAULT))
        assert "#define D 64" in src
        assert "#define N 36" in src
        assert "#define HEADS 4" in src
        assert "#define DH 16" in src

    def test_unroll_pragma_matches_design(self):
        src = generate_hls_kernel(botnet_mhsa_design(FIXED_DEFAULT, unroll=128))
        assert "#pragma HLS UNROLL factor=128" in src

    def test_partition_pragmas(self):
        src = generate_hls_kernel(botnet_mhsa_design(FIXED_DEFAULT))
        assert "ARRAY_PARTITION variable=W cyclic factor=64" in src
        assert "ARRAY_PARTITION variable=X cyclic factor=64" in src

    def test_shared_buffer_single_w(self):
        src = generate_hls_kernel(
            botnet_mhsa_design(FIXED_DEFAULT, shared_weight_buffer=True)
        )
        assert "param_t W[D][D];" in src
        assert "param_t Wq" not in src

    def test_naive_buffers_three_w(self):
        src = generate_hls_kernel(
            botnet_mhsa_design(FIXED_DEFAULT, shared_weight_buffer=False)
        )
        for name in ("Wq", "Wk", "Wv"):
            assert f"param_t {name}[D][D];" in src

    def test_axi_interfaces(self):
        src = generate_hls_kernel(botnet_mhsa_design(FIXED_DEFAULT))
        assert "#pragma HLS INTERFACE axis port=in_stream" in src
        assert "s_axilite" in src

    def test_relative_pos_stage_toggles(self):
        with_r = generate_hls_kernel(botnet_mhsa_design(FIXED_DEFAULT))
        assert "R[HEADS][N][DH]" in with_r
        without = generate_hls_kernel(
            botnet_mhsa_design(FIXED_DEFAULT, use_relative_pos=False)
        )
        assert "R[HEADS][N][DH]" not in without

    def test_layernorm_stage_toggles(self):
        with_ln = generate_hls_kernel(botnet_mhsa_design(FIXED_DEFAULT))
        assert "LayerNorm" in with_ln
        without = generate_hls_kernel(
            botnet_mhsa_design(FIXED_DEFAULT, use_layernorm=False)
        )
        assert "LayerNorm" not in without

    def test_custom_top_name(self):
        src = generate_hls_kernel(
            botnet_mhsa_design(FIXED_DEFAULT), top_name="my_kernel"
        )
        assert "void my_kernel(" in src

    def test_deterministic(self):
        a = generate_hls_kernel(botnet_mhsa_design(FIXED_DEFAULT))
        b = generate_hls_kernel(botnet_mhsa_design(FIXED_DEFAULT))
        assert a == b

    def test_scale_constant_embedded(self):
        src = generate_hls_kernel(botnet_mhsa_design(FIXED_DEFAULT))
        # 1/sqrt(128) for the (512, 4-head) geometry
        assert "0.088388348" in src

    def test_balanced_braces(self):
        src = generate_hls_kernel(botnet_mhsa_design(FIXED_DEFAULT))
        assert src.count("{") == src.count("}")
