"""Unit tests for reductions (sum/mean/max/min/var)."""

import numpy as np
import pytest

from repro.tensor import Tensor, gradcheck


class TestSum:
    def test_sum_all(self, rng):
        a = rng.normal(size=(3, 4))
        assert Tensor(a).sum().item() == pytest.approx(a.sum(), rel=1e-6)

    @pytest.mark.parametrize("axis", [0, 1, -1, (0, 1), None])
    def test_sum_axes_grad(self, rng, axis):
        gradcheck(lambda x: x.sum(axis=axis), [rng.normal(size=(3, 4))])

    def test_sum_keepdims_shape(self, rng):
        out = Tensor(rng.normal(size=(2, 3, 4))).sum(axis=1, keepdims=True)
        assert out.shape == (2, 1, 4)

    def test_sum_3d_multiaxis(self, rng):
        gradcheck(lambda x: x.sum(axis=(0, 2)), [rng.normal(size=(2, 3, 4))])


class TestMean:
    def test_mean_value(self, rng):
        a = rng.normal(size=(4, 5))
        np.testing.assert_allclose(
            Tensor(a).mean(axis=0).data, a.mean(axis=0), rtol=1e-5
        )

    @pytest.mark.parametrize("axis", [0, (1, 2), None])
    def test_mean_grad(self, rng, axis):
        gradcheck(lambda x: x.mean(axis=axis), [rng.normal(size=(2, 3, 4))])

    def test_mean_grad_scale(self):
        t = Tensor(np.ones((2, 5)), requires_grad=True)
        t.mean().backward()
        np.testing.assert_allclose(t.grad, np.full((2, 5), 0.1))


class TestMaxMin:
    def test_max_value(self, rng):
        a = rng.normal(size=(3, 7))
        np.testing.assert_allclose(Tensor(a).max(axis=1).data, a.max(axis=1), rtol=1e-6)

    def test_max_grad_unique(self, rng):
        a = rng.normal(size=(4, 6))
        gradcheck(lambda x: x.max(axis=1), [a])

    def test_max_grad_keepdims(self, rng):
        a = rng.normal(size=(4, 6))
        gradcheck(lambda x: x.max(axis=0, keepdims=True), [a])

    def test_max_ties_split(self):
        t = Tensor(np.array([[2.0, 2.0, 1.0]]), requires_grad=True)
        t.max(axis=1).backward()
        np.testing.assert_allclose(t.grad, [[0.5, 0.5, 0.0]])

    def test_min_value_and_grad(self, rng):
        a = rng.normal(size=(5, 3))
        np.testing.assert_allclose(Tensor(a).min(axis=0).data, a.min(axis=0), rtol=1e-6)
        gradcheck(lambda x: x.min(axis=0), [a])

    def test_global_max(self, rng):
        a = rng.normal(size=(3, 3))
        assert Tensor(a).max().item() == pytest.approx(a.max())


class TestVar:
    def test_var_matches_numpy(self, rng):
        a = rng.normal(size=(6, 5))
        np.testing.assert_allclose(
            Tensor(a).var(axis=0).data, a.var(axis=0), rtol=1e-5
        )

    def test_var_grad(self, rng):
        gradcheck(lambda x: x.var(axis=1), [rng.normal(size=(3, 5))])


class TestSoftmax:
    def test_softmax_rows_sum_to_one(self, rng):
        out = Tensor(rng.normal(size=(4, 9)) * 10).softmax(axis=-1)
        np.testing.assert_allclose(out.data.sum(axis=-1), np.ones(4), rtol=1e-5)

    def test_softmax_stability_large_logits(self):
        out = Tensor(np.array([[1000.0, 1000.0, 0.0]])).softmax()
        assert np.isfinite(out.data).all()
        assert out.data[0, 0] == pytest.approx(0.5, rel=1e-4)

    def test_softmax_grad(self, rng):
        gradcheck(lambda x: x.softmax(axis=-1), [rng.normal(size=(2, 5))])

    def test_log_softmax_consistency(self, rng):
        a = rng.normal(size=(3, 6))
        np.testing.assert_allclose(
            Tensor(a).log_softmax().data,
            np.log(Tensor(a).softmax().data),
            rtol=1e-5,
            atol=1e-6,
        )

    def test_log_softmax_grad(self, rng):
        gradcheck(lambda x: x.log_softmax(axis=0), [rng.normal(size=(4, 3))])
