"""Tests for the full-model FPGA design study and the HLS report."""

import pytest

from repro.experiments import FIXED_DEFAULT, FLOAT32
from repro.experiments.designs import botnet_mhsa_design
from repro.fpga import FullModelDesign, ZynqBoard, hls_report
from repro.models import build_model
from repro.profiling import model_macs


class TestFullModelDesign:
    @pytest.fixture(scope="class")
    def proposed(self):
        return build_model("ode_botnet", profile="paper")

    def test_rejects_non_odenet(self):
        with pytest.raises(TypeError):
            FullModelDesign(build_model("resnet50", profile="tiny"))

    def test_mac_count_matches_profiler(self, proposed):
        """The layer table must agree with the independent MAC counter."""
        d = FullModelDesign(proposed, arithmetic=FIXED_DEFAULT)
        profiler = model_macs(proposed)
        assert d.total_macs() == pytest.approx(profiler, rel=0.05)

    def test_weights_fit_in_uram(self, proposed):
        """The abstract's enabler: the 0.5M-parameter model keeps all
        weights on-chip in URAM (impossible for 19M-param BoTNet50)."""
        d = FullModelDesign(proposed, arithmetic=FIXED_DEFAULT)
        assert d.weights_fit_on_chip()
        # BoTNet50 would not fit: 18.8M params x 24b >> 96 x 288Kb
        botnet_bits = 18_822_218 * 24
        assert botnet_bits / (288 * 1024) > d.device.uram

    def test_layer_table_structure(self, proposed):
        d = FullModelDesign(proposed, arithmetic=FIXED_DEFAULT)
        names = [l.name for l in d.layers]
        assert names == ["stem", "block1", "down_block1", "block2",
                         "down_block2", "block3", "fc"]
        assert all(l.cycles > 0 for l in d.layers)

    def test_full_offload_beats_software(self, proposed):
        """Future-work payoff: whole-model PL execution is much faster
        than the PS software baseline."""
        d = FullModelDesign(proposed, arithmetic=FIXED_DEFAULT)
        board = ZynqBoard()
        sw_ms = d.total_macs() / (board.ps_gmacs * 1e9) * 1e3
        assert sw_ms / d.latency_ms() > 3

    def test_fixed_faster_than_float(self, proposed):
        fx = FullModelDesign(proposed, arithmetic=FIXED_DEFAULT)
        fl = FullModelDesign(proposed, arithmetic=FLOAT32)
        assert fx.latency_ms() < fl.latency_ms()

    def test_resources_fit(self, proposed):
        d = FullModelDesign(proposed, arithmetic=FIXED_DEFAULT)
        assert d.resource_report().fits()

    def test_unroll_reduces_latency(self, proposed):
        d1 = FullModelDesign(proposed, arithmetic=FIXED_DEFAULT, unroll=32)
        d2 = FullModelDesign(proposed, arithmetic=FIXED_DEFAULT, unroll=128)
        assert d2.total_cycles() < d1.total_cycles()


class TestHlsReport:
    def test_report_contains_key_sections(self):
        text = hls_report(botnet_mhsa_design(FIXED_DEFAULT))
        for needle in ("Performance & Resource Estimates", "Loop summary",
                       "Utilization estimates", "Buffer plan", "BRAM_18K",
                       "XW^q, XW^k, XW^v", "MEETS"):
            assert needle in text

    def test_report_flags_overflowing_design(self):
        text = hls_report(
            botnet_mhsa_design(FIXED_DEFAULT, shared_weight_buffer=False)
        )
        assert "EXCEEDS" in text

    def test_original_schedule_report(self):
        par = hls_report(botnet_mhsa_design(FIXED_DEFAULT), parallel=True)
        orig = hls_report(botnet_mhsa_design(FIXED_DEFAULT), parallel=False)
        assert par != orig
