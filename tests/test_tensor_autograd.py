"""Tests for autograd mechanics: graph walks, accumulation, modes."""

import numpy as np
import pytest

from repro.tensor import Tensor, is_grad_enabled, no_grad


class TestBackwardMechanics:
    def test_scalar_backward_default_grad(self):
        t = Tensor(np.array([2.0, 3.0]), requires_grad=True)
        (t * t).sum().backward()
        np.testing.assert_allclose(t.grad, [4.0, 6.0])

    def test_nonscalar_backward_requires_grad_arg(self):
        t = Tensor(np.ones((2, 2)), requires_grad=True)
        with pytest.raises(RuntimeError):
            (t * 2).backward()

    def test_explicit_grad(self):
        t = Tensor(np.ones(3), requires_grad=True)
        (t * 2).backward(np.array([1.0, 2.0, 3.0]))
        np.testing.assert_allclose(t.grad, [2.0, 4.0, 6.0])

    def test_grad_shape_mismatch_raises(self):
        t = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(RuntimeError):
            (t * 2).backward(np.ones(4))

    def test_diamond_graph_accumulates(self):
        # y = x*x + x*x should give dy/dx = 4x
        t = Tensor(np.array([3.0]), requires_grad=True)
        a = t * t
        b = t * t
        (a + b).sum().backward()
        assert t.grad[0] == pytest.approx(12.0)

    def test_reused_tensor_in_one_op(self):
        t = Tensor(np.array([2.0]), requires_grad=True)
        (t * t).sum().backward()
        assert t.grad[0] == pytest.approx(4.0)

    def test_repeated_backward_accumulates_into_grad(self):
        t = Tensor(np.array([1.0]), requires_grad=True)
        (t * 3).sum().backward()
        (t * 3).sum().backward()
        assert t.grad[0] == pytest.approx(6.0)

    def test_zero_grad(self):
        t = Tensor(np.array([1.0]), requires_grad=True)
        (t * 3).sum().backward()
        t.zero_grad()
        assert t.grad is None

    def test_no_grad_flowing_to_non_required(self):
        a = Tensor(np.ones(2), requires_grad=True)
        b = Tensor(np.ones(2), requires_grad=False)
        (a * b).sum().backward()
        assert a.grad is not None
        assert b.grad is None

    def test_deep_chain_no_recursion_error(self):
        # ODE unrolls create graphs thousands of ops deep
        t = Tensor(np.array([1.0]), requires_grad=True)
        x = t
        for _ in range(5000):
            x = x + 0.0001
        x.sum().backward()
        assert t.grad[0] == pytest.approx(1.0)

    def test_intermediate_tensors_no_grad_attr(self):
        t = Tensor(np.ones(2), requires_grad=True)
        mid = t * 2
        mid.sum().backward()
        assert mid.grad is None  # non-leaf
        assert t.grad is not None


class TestGradMode:
    def test_no_grad_blocks_graph(self):
        t = Tensor(np.ones(2), requires_grad=True)
        with no_grad():
            out = t * 2
        assert out._ctx is None
        assert not out.requires_grad

    def test_no_grad_restores(self):
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_no_grad_restores_on_exception(self):
        with pytest.raises(ValueError):
            with no_grad():
                raise ValueError
        assert is_grad_enabled()

    def test_nested_no_grad(self):
        with no_grad():
            with no_grad():
                assert not is_grad_enabled()
            assert not is_grad_enabled()

    def test_detach(self):
        t = Tensor(np.ones(2), requires_grad=True)
        d = (t * 2).detach()
        assert not d.requires_grad
        assert d._ctx is None


class TestTensorBasics:
    def test_float64_downcast_on_copy(self):
        t = Tensor([1.0, 2.0])
        assert t.dtype == np.float32

    def test_explicit_dtype_preserved(self):
        t = Tensor([1.0], dtype=np.float64)
        assert t.dtype == np.float64

    def test_from_tensor(self):
        a = Tensor([1.0, 2.0])
        b = Tensor(a)
        np.testing.assert_array_equal(a.data, b.data)

    def test_repr_mentions_requires_grad(self):
        assert "requires_grad" in repr(Tensor([1.0], requires_grad=True))

    def test_len_size_ndim(self, rng):
        t = Tensor(rng.normal(size=(4, 5)))
        assert len(t) == 4
        assert t.size == 20
        assert t.ndim == 2

    def test_item_scalar(self):
        assert Tensor(np.array(3.5)).item() == pytest.approx(3.5)

    def test_astype(self):
        t = Tensor([1.5]).astype(np.float64)
        assert t.dtype == np.float64
