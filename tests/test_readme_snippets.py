"""Execute the python code blocks in README.md — docs must stay honest."""

import os
import re

import pytest

README = os.path.join(os.path.dirname(__file__), "..", "README.md")


def _python_blocks():
    text = open(README).read()
    blocks = re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)
    assert blocks, "README has no python blocks?"
    return blocks


def test_readme_python_blocks_run():
    """Blocks execute cumulatively (later blocks build on earlier ones),
    like a reader following the README top to bottom."""
    namespace = {}
    for index, block in enumerate(_python_blocks()):
        exec(compile(block, f"README block {index}", "exec"), namespace)


def test_hls_loopnest_validation():
    from repro.fpga import LoopNest

    with pytest.raises(ValueError):
        LoopNest(trip=10, unroll=0)
    with pytest.raises(ValueError):
        LoopNest(trip=10, ii=0)
