"""repro.cluster: wire framing, transport, worker, shared weights,
autoscaler, and the elastic serving surface they plug into.

The cluster layer's contract, pinned:

* the wire protocol fails **typed** on every malformed input — bad
  magic, wrong version, oversized length, truncated prefix, peer gone
  mid-frame, undecodable payload — and never hands garbage upward;
* a :class:`~repro.cluster.WorkerClient` round trip survives a
  timeout: the late reply is discarded by sequence id, never returned
  as a later request's answer (the PR 4 pipe regression, on TCP);
* :class:`~repro.cluster.RemoteReplica` responses are bit-exact with a
  direct :class:`~repro.runtime.InferenceSession` for every registry
  model — distribution reschedules computation, never changes it;
* ``shared_weights=True`` maps **one** weight set per host: every
  replica's parameters view the same mmap, and the versioned header
  propagates one refresh bump to all of them;
* the elastic pool surface (``add`` / ``remove`` / resized dispatch
  slots) and the autoscaler's pure ``evaluate`` decisions behave;
* a 3x overload soak across two workers completes with zero hung
  futures and a bounded queue.

Workers run in-process (thread-mode pools over loopback) so the suite
stays fast on 1-CPU runners; subprocess workers are exercised by the
CLI smoke test and ``benchmarks/test_cluster_scaling.py``.
"""

import os
import socket
import struct
import subprocess
import sys
import threading
import time

import numpy as np
import pytest

from repro.cluster import (
    Autoscaler,
    ClusterWorker,
    PeerGone,
    RemoteReplica,
    SharedWeightStore,
    STORE_MAGIC,
    STORE_SCHEMA,
    WIRE_VERSION,
    WireProtocolError,
    WorkerClient,
    connect_worker,
    parse_address,
)
from repro.cluster.wire import (
    HEADER_BYTES,
    MAGIC,
    MAX_FRAME_BYTES,
    decode_header,
    encode_frame,
    format_address,
    recv_frame,
    send_frame,
)
from repro.adapt import WeightPublisher
from repro.models import build_model
from repro.models.registry import MODELS, PROFILES
from repro.runtime import InferenceSession, SessionConfig
from repro.serve import (
    Replica,
    ReplicaPool,
    Server,
    arrival_offsets,
    calibrate_rate,
    run_load,
)

SIZE = PROFILES["tiny"]["input_size"]

_HEADER = struct.Struct("!4sBQ")


def _samples(n=2, seed=0):
    rng = np.random.default_rng(seed)
    return rng.standard_normal((n, 3, SIZE, SIZE)).astype(np.float32)


def _direct(model_name, x):
    return InferenceSession(
        build_model(model_name, profile="tiny", seed=0, inference=True)
    ).predict_batch(x)


def _echo_session(scale=1.0):
    def fn(batch):
        batch = np.asarray(batch)
        return scale * batch.reshape(batch.shape[0], -1).sum(axis=1)[:, None]

    return InferenceSession(fn)


# ----------------------------------------------------------------------
# wire framing
# ----------------------------------------------------------------------
class TestWire:
    def _pair(self):
        a, b = socket.socketpair()
        a.settimeout(5)
        b.settimeout(5)
        return a, b

    def test_frame_round_trip(self):
        a, b = self._pair()
        try:
            payload = {"op": "run", "x": np.arange(4.0)}
            send_frame(a, payload)
            out = recv_frame(b)
            assert out["op"] == "run"
            np.testing.assert_array_equal(out["x"], payload["x"])
        finally:
            a.close()
            b.close()

    def test_bad_magic_is_typed(self):
        a, b = self._pair()
        try:
            a.sendall(_HEADER.pack(b"HTTP", WIRE_VERSION, 4) + b"oops")
            with pytest.raises(WireProtocolError, match="magic"):
                recv_frame(b)
        finally:
            a.close()
            b.close()

    def test_version_mismatch_is_typed(self):
        a, b = self._pair()
        try:
            a.sendall(_HEADER.pack(MAGIC, WIRE_VERSION + 1, 1) + b"x")
            with pytest.raises(WireProtocolError, match="version"):
                recv_frame(b)
        finally:
            a.close()
            b.close()

    def test_oversized_length_rejected_before_allocation(self):
        # a corrupt prefix must not turn into a giant recv buffer
        header = _HEADER.pack(MAGIC, WIRE_VERSION, MAX_FRAME_BYTES + 1)
        with pytest.raises(WireProtocolError, match="bound"):
            decode_header(header)

    def test_truncated_prefix_is_peer_gone(self):
        a, b = self._pair()
        try:
            a.sendall(encode_frame("hello")[: HEADER_BYTES - 3])
            a.close()
            with pytest.raises(PeerGone, match="mid-frame header"):
                recv_frame(b)
        finally:
            b.close()

    def test_truncated_body_is_peer_gone(self):
        a, b = self._pair()
        try:
            frame = encode_frame("a reasonably long payload string")
            a.sendall(frame[: HEADER_BYTES + 5])
            a.close()
            with pytest.raises(PeerGone, match="mid-frame body"):
                recv_frame(b)
        finally:
            b.close()

    def test_clean_close_is_peer_gone(self):
        a, b = self._pair()
        a.close()
        try:
            with pytest.raises(PeerGone, match="before frame"):
                recv_frame(b)
        finally:
            b.close()

    def test_undecodable_payload_is_typed(self):
        a, b = self._pair()
        try:
            a.sendall(_HEADER.pack(MAGIC, WIRE_VERSION, 4) + b"\xff\xff\xff\xff")
            with pytest.raises(WireProtocolError, match="undecodable"):
                recv_frame(b)
        finally:
            a.close()
            b.close()

    def test_parse_address(self):
        assert parse_address("127.0.0.1:8421") == ("127.0.0.1", 8421)
        host, port = parse_address(format_address(("worker-3", 9000)))
        assert (host, port) == ("worker-3", 9000)
        with pytest.raises(ValueError, match="host:port"):
            parse_address("no-port-here")
        with pytest.raises(ValueError, match="non-integer port"):
            parse_address("host:eighty")


# ----------------------------------------------------------------------
# transport robustness against a scripted peer
# ----------------------------------------------------------------------
def _hello(**over):
    info = {"wire_version": WIRE_VERSION, "replicas": 1, "tiers": [],
            "weights_version": 1}
    info.update(over)
    return info


class _ScriptedPeer:
    """A loopback listener that speaks one scripted connection."""

    def __init__(self, script, hello=_hello):
        self._listener = socket.socket()
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(1)
        self.address = self._listener.getsockname()[:2]
        self.error = None
        self._thread = threading.Thread(
            target=self._run, args=(script, hello), daemon=True
        )
        self._thread.start()

    def _run(self, script, hello):
        try:
            conn, _ = self._listener.accept()
        except OSError:
            return
        conn.settimeout(10)
        try:
            if hello is not None:
                send_frame(conn, ("hello", hello()))
            script(conn)
        except Exception as exc:  # surfaced by close()
            self.error = exc
        finally:
            try:
                conn.close()
            except OSError:
                pass

    def close(self):
        self._listener.close()
        self._thread.join(timeout=5)
        if self.error is not None:
            raise self.error


class TestWorkerClient:
    def test_rejects_peer_that_does_not_say_hello(self):
        def script(conn):
            pass

        peer = _ScriptedPeer(script, hello=lambda: None)

        def bad_hello(conn):
            send_frame(conn, ("nothello", {}))

        peer2 = _ScriptedPeer(bad_hello, hello=None)
        try:
            with pytest.raises((WireProtocolError, PeerGone)):
                WorkerClient(peer.address, connect_timeout_s=5)
            with pytest.raises(WireProtocolError, match="hello"):
                WorkerClient(peer2.address, connect_timeout_s=5)
        finally:
            peer.close()
            peer2.close()

    def test_rejects_wire_version_mismatch(self):
        peer = _ScriptedPeer(
            lambda conn: None,
            hello=lambda: _hello(wire_version=WIRE_VERSION + 1),
        )
        try:
            with pytest.raises(WireProtocolError, match="wire version"):
                WorkerClient(peer.address, connect_timeout_s=5)
        finally:
            peer.close()

    def test_malformed_reply_poisons_the_connection(self):
        def script(conn):
            recv_frame(conn)
            send_frame(conn, ["not", "a-3-tuple"])

        peer = _ScriptedPeer(script)
        try:
            client = WorkerClient(peer.address, connect_timeout_s=5)
            with pytest.raises(WireProtocolError, match="malformed reply"):
                client.request("ping", timeout_s=5)
            assert client.closed
            with pytest.raises(PeerGone, match="closed"):
                client.request("ping")
        finally:
            peer.close()

    def test_stale_sequence_ids_are_discarded(self):
        def script(conn):
            _op, seq, _payload = recv_frame(conn)
            send_frame(conn, (seq - 1, "ok", "stale"))
            send_frame(conn, (seq, "ok", "fresh"))

        peer = _ScriptedPeer(script)
        try:
            client = WorkerClient(peer.address, connect_timeout_s=5)
            assert client.request("ping", timeout_s=5) == "fresh"
            assert not client.closed
            client.close()
        finally:
            peer.close()

    def test_timeout_survives_and_late_reply_is_discarded(self):
        # the PR 4 pipe regression on TCP: a timed-out request's reply
        # stays buffered in the socket; the next request must discard
        # it by sequence id, not hand the old answer to a new caller
        def script(conn):
            _op, seq1, _ = recv_frame(conn)
            time.sleep(0.5)
            send_frame(conn, (seq1, "ok", "late answer"))
            _op, seq2, _ = recv_frame(conn)
            send_frame(conn, (seq2, "ok", "right answer"))

        peer = _ScriptedPeer(script)
        try:
            client = WorkerClient(peer.address, connect_timeout_s=5)
            with pytest.raises(TimeoutError):
                client.request("ping", timeout_s=0.1)
            assert not client.closed  # a timeout is survivable
            assert client.request("ping", timeout_s=10) == "right answer"
            client.close()
        finally:
            peer.close()

    def test_mid_batch_disconnect_is_peer_gone(self):
        def script(conn):
            recv_frame(conn)  # take the request, answer with nothing

        peer = _ScriptedPeer(script)
        try:
            client = WorkerClient(peer.address, connect_timeout_s=5)
            with pytest.raises(PeerGone):
                client.request("run", {"x": 1}, timeout_s=5)
            assert client.closed
        finally:
            peer.close()

    def test_shipped_exception_is_reraised_typed(self):
        def script(conn):
            _op, seq, _ = recv_frame(conn)
            send_frame(conn, (seq, "err", ValueError("worker says no")))

        peer = _ScriptedPeer(script)
        try:
            client = WorkerClient(peer.address, connect_timeout_s=5)
            with pytest.raises(ValueError, match="worker says no"):
                client.request("run", timeout_s=5)
            assert not client.closed  # an op error is not a wire error
            client.close()
        finally:
            peer.close()


# ----------------------------------------------------------------------
# the worker + RemoteReplica, in-process over loopback
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def worker():
    with ClusterWorker.build("ode_botnet", "tiny", 2, mode="thread",
                             shared_weights=True) as w:
        w.start()
        yield w


class TestClusterWorker:
    def test_hello_advertises_the_pool(self, worker):
        client = WorkerClient(worker.address, connect_timeout_s=5)
        try:
            info = client.info
            assert info["wire_version"] == WIRE_VERSION
            assert info["model"] == "ode_botnet"
            assert info["profile"] == "tiny"
            assert info["replicas"] == 2
            assert info["weights_version"] >= 1
            assert info["shared_weights"]["magic"] == STORE_MAGIC.decode()
            assert info["shared_weights"]["schema"] == STORE_SCHEMA
        finally:
            client.close()

    @pytest.mark.parametrize("model_name", sorted(MODELS))
    def test_remote_replica_bit_exact_for_every_registry_model(
            self, model_name):
        x = _samples(2)
        direct = _direct(model_name, x)
        with ClusterWorker.build(model_name, "tiny", 1,
                                 mode="thread") as w:
            w.start()
            replica = RemoteReplica(w.address, timeout_s=60)
            try:
                np.testing.assert_array_equal(replica.run(x), direct)
            finally:
                replica.close()

    def test_unknown_op_is_typed_and_survivable(self, worker):
        client = WorkerClient(worker.address, connect_timeout_s=5)
        try:
            with pytest.raises(ValueError, match="unknown cluster op"):
                client.request("frobnicate", timeout_s=5)
            assert client.request("ping", timeout_s=5) == "pong"
        finally:
            client.close()

    def test_worker_side_failure_feeds_health_accounting(self, worker):
        replica = RemoteReplica(worker.address, timeout_s=30,
                                unhealthy_after=3)
        try:
            with pytest.raises(Exception):
                replica.run(np.zeros((1, 7), np.float32))  # bad shape
            assert replica.consecutive_failures == 1
            assert replica.healthy  # one failure is under the threshold
            np.testing.assert_array_equal(
                replica.run(_samples(1)), _direct("ode_botnet", _samples(1))
            )
            assert replica.consecutive_failures == 0
        finally:
            replica.close()

    def test_connect_worker_opens_one_slot_per_advertised_replica(
            self, worker):
        replicas = connect_worker(worker.address, timeout_s=30)
        try:
            assert len(replicas) == 2
            assert len({r.name for r in replicas}) == 2
            x = _samples(2)
            direct = _direct("ode_botnet", x)
            for replica in replicas:
                np.testing.assert_array_equal(replica.run(x), direct)
                assert replica.health()["remote"] is True
        finally:
            for replica in replicas:
                replica.close()

    def test_remote_health_stats_and_ping(self, worker):
        replica = RemoteReplica(worker.address, timeout_s=30)
        try:
            replica.run(_samples(2))
            report = replica.remote_health()
            assert report["replicas"] == 2
            assert set(report["pool"]) == {"replica-0", "replica-1"}
            assert replica.ping() >= 0.0
            stats = replica.remote_stats()
            assert stats.snapshot()["requests"] >= 2
            # parent-side stats track round trips independently
            assert replica.stats.snapshot()["batches"] == 1
        finally:
            replica.close()

    def test_remote_publish_moves_tier_sessions(self):
        """A worker-side publish must move the degrade-tier sessions
        too — thread-mode tiers hold private weight copies."""
        from repro.serve.tiers import BUILTIN_TIERS

        tiers = ("reduced", "int8")
        x = _samples(2)
        with ClusterWorker.build("ode_botnet", "tiny", 1, mode="thread",
                                 tiers=tiers) as w:
            w.start()
            replica = RemoteReplica(w.address, timeout_s=60)
            try:
                before = {t: replica.run(x, tier=t) for t in tiers}
                state = build_model("ode_botnet", profile="tiny",
                                    seed=99).state_dict()
                replica.publish(state)
                for tier in tiers:
                    after = replica.run(x, tier=tier)
                    assert not np.array_equal(before[tier], after), tier
                    expected = BUILTIN_TIERS[tier].build_session(
                        "ode_botnet", "tiny", state=state,
                    ).predict_batch(x)
                    np.testing.assert_array_equal(after, expected,
                                                  err_msg=tier)
            finally:
                replica.close()

    def test_refresh_propagates_the_shared_version(self, worker):
        replica = RemoteReplica(worker.address, timeout_s=30)
        try:
            before = replica.weights_version
            replica.refresh()
            assert replica.weights_version == before + 1
            assert worker.weight_store.version == replica.weights_version
        finally:
            replica.close()

    def test_worker_trace_spans_ship_back(self, worker):
        from repro.trace import Tracer

        replica = RemoteReplica(worker.address, timeout_s=30)
        tracer = Tracer()
        try:
            with tracer.activate():
                replica.run(_samples(1))
            assert tracer.spans(), "worker-side spans should be ingested"
        finally:
            replica.close()


# ----------------------------------------------------------------------
# shared packed weights
# ----------------------------------------------------------------------
class TestSharedWeightStore:
    def test_create_views_and_versioned_header(self):
        state = build_model("ode_botnet", profile="tiny", seed=0,
                            inference=True).state_dict()
        store = SharedWeightStore.create(state)
        try:
            assert set(store.names) == set(state)
            views = store.arrays()
            for name, value in state.items():
                np.testing.assert_array_equal(views[name],
                                              np.asarray(value))
                assert views[name].base is store._mm  # zero-copy
            header = store.describe()
            assert header["magic"] == STORE_MAGIC.decode()
            assert header["schema"] == STORE_SCHEMA
            assert header["weights_version"] == 1
            assert store.bump_version() == 2
            assert store.describe()["weights_version"] == 2
        finally:
            store.close()

    def test_pool_maps_one_copy_per_host(self):
        pool = ReplicaPool.build("ode_botnet", "tiny", 2,
                                 shared_weights=True)
        try:
            store = pool.weight_store
            assert store is not None
            for replica in pool:
                for _name, param in replica.session.model.named_parameters():
                    # every replica's weights are views over the one
                    # shared mapping, not private copies
                    assert param.data.base is store._mm
            x = _samples(3)
            direct = _direct("ode_botnet", x)
            for replica in pool:
                np.testing.assert_array_equal(replica.run(x), direct)
        finally:
            pool.close()

    def test_refresh_bumps_the_store_version_once_for_all(self):
        pool = ReplicaPool.build("ode_botnet", "tiny", 2,
                                 shared_weights=True)
        try:
            pool.refresh()
            versions = {r.weights_version for r in pool}
            assert versions == {pool.weight_store.version}
            assert pool.weight_store.version == 2
        finally:
            pool.close()

    def test_adopt_rejects_shape_mismatch(self):
        state = build_model("ode_botnet", profile="tiny", seed=0,
                            inference=True).state_dict()
        store = SharedWeightStore.create(state)
        try:
            other = build_model("ode_botnet", profile="small", seed=0,
                                inference=True)
            with pytest.raises((ValueError, KeyError)):
                store.adopt(other)
        finally:
            store.close()

    def test_write_arrays_validates_before_writing(self):
        state = build_model("ode_botnet", profile="tiny", seed=0,
                            inference=True).state_dict()
        store = SharedWeightStore.create(state)
        try:
            name = next(
                n for n in store.names if store.arrays()[n].ndim >= 2
            )
            before = store.arrays()[name].copy()
            bad = dict(state)
            bad[name] = np.zeros(
                tuple(d + 1 for d in before.shape), np.float32
            )
            with pytest.raises(ValueError, match="shape mismatch"):
                store.write_arrays(bad)
            # validate-then-write: nothing was touched
            np.testing.assert_array_equal(store.arrays()[name], before)
            with pytest.raises(KeyError, match="no array named"):
                store.write_arrays({"nope": np.zeros(1)})
            assert store.version == 1  # writes never move the header
        finally:
            store.close()

    def test_refresh_never_exposes_torn_versions(self):
        """Readers racing ``refresh`` see monotone, fully-published
        versions — and a version implies its arrays were written.

        Each generation ``g`` writes every array to the constant ``g``
        before the header moves to ``g + 1``.  A reader that samples
        the version, then an array, then the version again and finds
        both versions equal to ``v`` must observe array values from
        generation ``v - 1`` *or newer* — never older (the header only
        moves after the arrays), and never a decreasing version.
        """
        state = {
            "a": np.zeros((64, 64), np.float32),
            "b": np.zeros((128,), np.float32),
        }
        store = SharedWeightStore.create(state)
        generations = 40
        errors = []
        stop = threading.Event()

        def reader():
            last = 0
            while not stop.is_set():
                v0 = store.version
                a = float(store.arrays()["a"][0, 0])
                v1 = store.version
                if v0 < last:
                    errors.append(f"version went backwards: {last}->{v0}")
                    return
                last = v0
                if v0 == v1 and a < v0 - 1:
                    errors.append(
                        f"torn read: version {v0} but array from "
                        f"generation {a}"
                    )
                    return

        threads = [threading.Thread(target=reader) for _ in range(4)]
        try:
            for t in threads:
                t.start()
            for g in range(1, generations + 1):
                store.refresh({
                    "a": np.full((64, 64), float(g), np.float32),
                    "b": np.full((128,), float(g), np.float32),
                })
            stop.set()
            for t in threads:
                t.join(timeout=10)
            assert not errors, errors
            assert store.version == generations + 1
        finally:
            stop.set()
            for t in threads:
                t.join(timeout=10)
            store.close()

    def test_refresh_races_inflight_run_ops(self):
        """Hot swaps land while replicas serve: zero failed requests,
        monotone non-torn versions, and post-swap outputs bit-exact
        with the final published generation."""
        pool = ReplicaPool.build("ode_botnet", "tiny", 2,
                                 shared_weights=True)
        try:
            x = _samples(2)
            states = [
                build_model("ode_botnet", profile="tiny",
                            seed=s).state_dict()
                for s in (0, 7)
            ]
            errors = []
            stop = threading.Event()

            def serve(replica):
                last = 0
                while not stop.is_set():
                    try:
                        out = replica.run(x)
                    except Exception as exc:
                        errors.append(repr(exc))
                        return
                    if out.shape[0] != len(x):
                        errors.append(f"bad output {out.shape}")
                        return
                    version = pool.weight_store.version
                    if version < last:
                        errors.append(
                            f"version reversed {last}->{version}")
                        return
                    last = version

            threads = [
                threading.Thread(target=serve, args=(r,)) for r in pool
            ]
            for t in threads:
                t.start()
            publisher = WeightPublisher(pool)
            for i in range(12):
                publisher.publish(states[i % 2])
            stop.set()
            for t in threads:
                t.join(timeout=30)
            assert not errors, errors
            assert pool.weight_store.version == 13
            # settled state == the last published generation, bit-exact
            final = build_model("ode_botnet", profile="tiny", seed=7,
                                pretrained_state=states[1],
                                inference=True)
            expected = InferenceSession(final).predict_batch(x)
            for replica in pool:
                np.testing.assert_array_equal(replica.run(x), expected)
        finally:
            pool.close()


# ----------------------------------------------------------------------
# elastic serving surface
# ----------------------------------------------------------------------
class TestElasticity:
    def test_pool_add_and_remove(self):
        pool = ReplicaPool([Replica("a", _echo_session()),
                            Replica("b", _echo_session())])
        with pytest.raises(ValueError, match="already in the pool"):
            pool.add(Replica("a", _echo_session()))
        pool.add(Replica("c", _echo_session()))
        assert len(pool) == 3
        removed = pool.remove("b")
        assert removed.name == "b"
        with pytest.raises(KeyError):
            pool.remove("nope")
        pool.remove("c")
        with pytest.raises(ValueError, match="last replica"):
            pool.remove("a")

    def test_server_resizes_dispatch_slots(self):
        pool = ReplicaPool([Replica("a", _echo_session())])
        with Server(pool, max_batch_size=2, max_wait_ms=1.0) as server:
            per = server.scheduler.inflight_per_replica
            assert server.scheduler._slots.limit == per
            server.add_replica(Replica("b", _echo_session()))
            assert server.scheduler._slots.limit == 2 * per
            fut = server.submit(np.ones(4, np.float32))
            assert fut.result(timeout=30) is not None
            removed = server.remove_replica("b")
            removed.close()
            assert server.scheduler._slots.limit == per
            # the shrunk server still serves
            assert server.submit(np.ones(4, np.float32)).result(timeout=30)

    def test_server_build_pulls_worker_slots_from_config(self, worker):
        config = SessionConfig(
            workers=(format_address(worker.address),)
        )
        x = _samples(6)
        direct = _direct("ode_botnet", x)
        server = Server.build("ode_botnet", "tiny", 1, seed=0,
                              config=config, max_batch_size=4,
                              max_wait_ms=10.0)
        try:
            # 1 local replica + the worker's 2 advertised slots
            assert len(server.pool) == 3
            remote = [r for r in server.pool
                      if isinstance(r, RemoteReplica)]
            assert len(remote) == 2
            futures = [server.submit(xi) for xi in x]
            rows = np.stack([f.result(timeout=60) for f in futures])
            np.testing.assert_allclose(rows, direct, rtol=1e-12,
                                       atol=1e-9)
            report = server.metrics_report()
            assert format_address(worker.address) in report
        finally:
            server.close()


# ----------------------------------------------------------------------
# autoscaler decisions (pure) and application (sockets)
# ----------------------------------------------------------------------
class _FakePool(list):
    pass


class _FakeServer:
    def __init__(self, n):
        self.pool = _FakePool(range(n))


def _metrics(p99_ms, depth=0, capacity=10):
    return {"aggregate": {"p99_ms": p99_ms},
            "queue": {"depth": depth, "capacity": capacity}}


class TestAutoscaler:
    def _scaler(self, n=2, **kw):
        kw.setdefault("min_replicas", 1)
        kw.setdefault("max_replicas", 4)
        return Autoscaler(_FakeServer(n), ["127.0.0.1:1"], **kw)

    def test_holds_with_no_traffic(self):
        decision = self._scaler().evaluate(_metrics(float("nan")))
        assert decision["action"] == "hold"
        assert "no traffic" in decision["reason"]

    def test_scales_up_when_hot(self):
        decision = self._scaler().evaluate(_metrics(80.0))
        assert decision["action"] == "up"

    def test_scales_up_on_deep_queue_alone(self):
        decision = self._scaler().evaluate(
            _metrics(float("nan"), depth=8, capacity=10)
        )
        assert decision["action"] == "up"

    def test_holds_when_tail_is_compute_dominated(self):
        decision = self._scaler().evaluate(
            _metrics(80.0), {"dominant": "replica_run"}
        )
        assert decision["action"] == "hold"
        assert "replica_run" in decision["reason"]

    def test_scales_up_when_tail_blames_queueing(self):
        decision = self._scaler().evaluate(
            _metrics(80.0), {"dominant": "queue"}
        )
        assert decision["action"] == "up"

    def test_holds_at_max_replicas(self):
        decision = self._scaler(n=4).evaluate(_metrics(80.0))
        assert decision["action"] == "hold"
        assert "max_replicas" in decision["reason"]

    def test_cold_with_nothing_autoscaled_holds(self):
        decision = self._scaler(n=2).evaluate(_metrics(1.0))
        assert decision["action"] == "hold"
        assert "nothing autoscaled" in decision["reason"]

    def test_cold_with_autoscaled_replicas_drains(self):
        scaler = self._scaler(n=2)
        with scaler._lock:
            scaler._remotes.append(object())
        decision = scaler.evaluate(_metrics(1.0))
        assert decision["action"] == "down"

    def test_bad_bounds_rejected(self):
        with pytest.raises(ValueError, match="max_replicas"):
            self._scaler(min_replicas=4, max_replicas=2)
        with pytest.raises(ValueError, match="at least one worker"):
            Autoscaler(_FakeServer(1), [])

    def test_scale_up_and_down_round_trip(self, worker):
        pool = ReplicaPool([Replica("local", _echo_session())])
        with Server(pool, max_batch_size=2, max_wait_ms=1.0) as server:
            scaler = Autoscaler(
                server, [format_address(worker.address)],
                min_replicas=1, max_replicas=3, timeout_s=30,
            )
            name = scaler.scale_up()
            assert name is not None
            assert len(server.pool) == 2
            assert scaler.snapshot()["autoscaled_replicas"] == [name]
            assert scaler.scale_down() == name
            assert len(server.pool) == 1
            assert scaler.snapshot()["autoscaled_replicas"] == []
            scaler.close()

    def test_session_config_validates_cluster_fields(self):
        config = SessionConfig(workers=("127.0.0.1:9000",),
                               autoscale=(1, 4))
        assert config.workers == ("127.0.0.1:9000",)
        assert config.autoscale == (1, 4)
        with pytest.raises(ValueError):
            SessionConfig(workers=("not-an-address",))
        with pytest.raises(ValueError, match="workers"):
            SessionConfig(autoscale=(1, 4))
        with pytest.raises(ValueError):
            SessionConfig(workers=("127.0.0.1:9000",), autoscale=(4, 1))


# ----------------------------------------------------------------------
# the overload soak: 3x load across two workers, nothing hangs
# ----------------------------------------------------------------------
class TestClusterSoak:
    def test_3x_overload_across_two_workers_bounded_and_hang_free(self):
        capacity = 16
        with ClusterWorker.build("ode_botnet", "tiny", 1,
                                 mode="thread") as w1, \
                ClusterWorker.build("ode_botnet", "tiny", 1,
                                    mode="thread") as w2:
            w1.start()
            w2.start()
            config = SessionConfig(workers=(
                format_address(w1.address), format_address(w2.address),
            ))
            server = Server.build(
                "ode_botnet", "tiny", 1, seed=0, config=config,
                queue_capacity=capacity, max_batch_size=8,
                max_wait_ms=2.0, shed_policy="reject",
            )
            try:
                assert len(server.pool) == 3  # 1 local + 2 remote slots
                per_replica = calibrate_rate(server, _samples(1)[0],
                                             seed=0)
                offsets = arrival_offsets(3.0 * per_replica, 1.5, seed=0)
                report = run_load(server, _samples(8), offsets, seed=0)
                queue_snap = server.metrics()["queue"]
            finally:
                server.close()
        assert report.hung == 0, "cluster serving hung a future"
        assert report.errors == 0, report.error_examples
        assert report.completed > 0
        assert queue_snap["high_water"] <= capacity, \
            "admission bound did not hold under 3x cluster overload"

    def test_remote_replicas_actually_share_the_load(self):
        with ClusterWorker.build("ode_botnet", "tiny", 2,
                                 mode="thread") as w:
            w.start()
            config = SessionConfig(workers=(format_address(w.address),))
            server = Server.build(
                "ode_botnet", "tiny", 1, seed=0, config=config,
                max_batch_size=4, max_wait_ms=2.0,
            )
            try:
                futures = [server.submit(x) for x in _samples(24, seed=3)]
                for fut in futures:
                    fut.result(timeout=60)
                remote_dispatches = sum(
                    r.dispatches for r in server.pool
                    if isinstance(r, RemoteReplica)
                )
            finally:
                server.close()
        assert remote_dispatches > 0, \
            "no batch was ever routed to a remote replica"


# ----------------------------------------------------------------------
# CLI surfaces
# ----------------------------------------------------------------------
def _repo_env():
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return env


class TestCLI:
    def test_worker_parser_documents_its_flags(self):
        from repro.cluster.worker import build_parser

        text = build_parser().format_help()
        for flag in ("--listen", "--model", "--replicas", "--mode",
                     "--shared-weights", "--tiers", "--timeout-s"):
            assert flag in text, flag
        assert "CLUSTER_WORKER_READY" in text

    def test_serve_cli_documents_cluster_flags(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.serve", "--help"],
            capture_output=True, text=True, timeout=120,
            env=_repo_env(),
        )
        assert proc.returncode == 0, proc.stderr
        assert "--workers" in proc.stdout
        assert "--autoscale" in proc.stdout
        assert "MIN:MAX" in proc.stdout

    def test_worker_subprocess_ready_line_and_round_trip(self):
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cluster.worker",
             "--listen", "127.0.0.1:0", "--replicas", "1",
             "--mode", "thread"],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
            env=_repo_env(),
        )
        try:
            line = proc.stdout.readline().strip()
            assert line.startswith("CLUSTER_WORKER_READY "), line
            address = parse_address(line.split()[1])
            assert f"pid={proc.pid}" in line
            assert "replicas=1" in line
            client = WorkerClient(address, connect_timeout_s=30)
            try:
                assert client.request("ping", timeout_s=30) == "pong"
                x = _samples(1)
                out, _spans = client.request(
                    "run", {"tier": None, "samples": x,
                            "want_trace": False},
                    timeout_s=60,
                )
                np.testing.assert_array_equal(
                    out, _direct("ode_botnet", x)
                )
            finally:
                client.close()
        finally:
            proc.terminate()
            try:
                proc.wait(timeout=10)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait(timeout=10)
