"""Tests for SynthSTL, loaders and augmentations."""

import numpy as np
import pytest

from repro.data import (
    ArrayDataset,
    ColorJitter,
    Compose,
    DataLoader,
    Normalize,
    RandomErasing,
    RandomHorizontalFlip,
    SynthSTL,
    make_synthstl_arrays,
)


class TestSynthSTL:
    def test_shapes_and_ranges(self):
        imgs, labels = make_synthstl_arrays("train", size=32, n_per_class=5)
        assert imgs.shape == (50, 3, 32, 32)
        assert imgs.dtype == np.float32
        assert imgs.min() >= 0.0 and imgs.max() <= 1.0
        assert sorted(np.unique(labels)) == list(range(10))

    def test_deterministic_given_seed(self):
        a1, l1 = make_synthstl_arrays("train", size=24, n_per_class=3, seed=5)
        a2, l2 = make_synthstl_arrays("train", size=24, n_per_class=3, seed=5)
        np.testing.assert_array_equal(a1, a2)
        np.testing.assert_array_equal(l1, l2)

    def test_different_seeds_differ(self):
        a1, _ = make_synthstl_arrays("train", size=24, n_per_class=3, seed=1)
        a2, _ = make_synthstl_arrays("train", size=24, n_per_class=3, seed=2)
        assert not np.allclose(a1, a2)

    def test_train_test_disjoint_noise(self):
        a1, _ = make_synthstl_arrays("train", size=24, n_per_class=3, seed=0)
        a2, _ = make_synthstl_arrays("test", size=24, n_per_class=3, seed=0)
        assert not np.allclose(a1, a2)

    def test_default_sizes_follow_stl10(self):
        train = SynthSTL("train", size=24, n_per_class=2)
        assert len(train) == 20
        # default counts: 500/800 per class (STL10 protocol); just check
        # the helper computes them without generating 96x96 here.
        assert train.num_classes == 10

    def test_classes_have_structure_but_not_linear_separability(self):
        """The task must be non-trivial (no pixel-space linear shortcut)
        yet class-conditional (distinct centroids)."""
        imgs, labels = make_synthstl_arrays("train", size=24, n_per_class=10, seed=0)
        flat = imgs.reshape(len(imgs), -1)
        centroids = np.stack([flat[labels == c].mean(axis=0) for c in range(10)])
        intra = np.mean(
            [
                np.linalg.norm(flat[labels == c] - centroids[c], axis=1).mean()
                for c in range(10)
            ]
        )
        inter = np.mean(
            [
                np.linalg.norm(centroids[c] - centroids[d])
                for c in range(10)
                for d in range(10)
                if c != d
            ]
        )
        # structured (centroids clearly apart) ...
        assert inter > 0.5 * intra
        # ... but no trivial pixel-space margin (classes overlap)
        assert inter < 3 * intra

    def test_color_shared_between_class_pairs(self):
        """Colour alone must not classify: classes c and c+5 share hue,
        forcing models to use texture orientation / layout."""
        imgs, labels = make_synthstl_arrays("train", size=24, n_per_class=20, seed=0)
        means = np.stack(
            [imgs[labels == c].mean(axis=(0, 2, 3)) for c in range(10)]
        )  # (10, 3) per-class mean colour
        for c in range(5):
            same = np.linalg.norm(means[c] - means[c + 5])
            other = np.mean(
                [np.linalg.norm(means[c] - means[d]) for d in range(10)
                 if d not in (c, c + 5)]
            )
            assert same < other

    def test_orientation_cue_differs_across_classes(self):
        """Texture orientation (the conv-friendly cue) varies by class:
        the dominant gradient direction must differ between classes."""
        imgs, labels = make_synthstl_arrays("train", size=32, n_per_class=10, seed=0)
        grey = imgs.mean(axis=1)
        angles = []
        for c in [0, 2, 4]:
            g = grey[labels == c]
            gy, gx = np.gradient(g, axis=(1, 2))
            # orientation via the structure tensor's dominant angle
            angle = 0.5 * np.arctan2(2 * (gx * gy).mean(), (gx**2 - gy**2).mean())
            angles.append(angle)
        assert np.ptp(angles) > 0.3

    def test_dataset_getitem_with_transform(self):
        calls = []

        def spy(img):
            calls.append(1)
            return img

        ds = SynthSTL("train", size=24, n_per_class=2, transform=spy)
        img, label = ds[0]
        assert img.shape == (3, 24, 24)
        assert len(calls) == 1


class TestDataLoader:
    def _dataset(self, n=25):
        rng = np.random.default_rng(0)
        return ArrayDataset(
            rng.normal(size=(n, 3, 8, 8)).astype(np.float32),
            rng.integers(0, 10, size=n),
        )

    def test_batch_shapes(self):
        loader = DataLoader(self._dataset(), batch_size=10)
        batches = list(loader)
        assert len(batches) == 3
        assert batches[0][0].shape == (10, 3, 8, 8)
        assert batches[-1][0].shape == (5, 3, 8, 8)

    def test_drop_last(self):
        loader = DataLoader(self._dataset(), batch_size=10, drop_last=True)
        assert len(list(loader)) == 2
        assert len(loader) == 2

    def test_shuffle_changes_order_between_epochs(self):
        loader = DataLoader(self._dataset(), batch_size=25, shuffle=True, seed=0)
        e1 = next(iter(loader))[1]
        e2 = next(iter(loader))[1]
        assert not np.array_equal(e1, e2)

    def test_no_shuffle_is_stable(self):
        loader = DataLoader(self._dataset(), batch_size=25)
        e1 = next(iter(loader))[1]
        e2 = next(iter(loader))[1]
        np.testing.assert_array_equal(e1, e2)

    def test_labels_dtype(self):
        loader = DataLoader(self._dataset(), batch_size=5)
        _, labels = next(iter(loader))
        assert labels.dtype == np.int64

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            ArrayDataset(np.zeros((3, 1)), np.zeros(4))


class TestTransforms:
    def _img(self):
        rng = np.random.default_rng(3)
        return rng.uniform(0.2, 0.8, size=(3, 16, 16)).astype(np.float32)

    def test_normalize(self):
        img = self._img()
        out = Normalize([0.5, 0.5, 0.5], [0.25, 0.25, 0.25])(img)
        np.testing.assert_allclose(out, (img - 0.5) / 0.25, rtol=1e-5)

    def test_hflip_p1_reverses(self):
        img = self._img()
        out = RandomHorizontalFlip(p=1.0)(img)
        np.testing.assert_array_equal(out, img[:, :, ::-1])

    def test_hflip_p0_identity(self):
        img = self._img()
        np.testing.assert_array_equal(RandomHorizontalFlip(p=0.0)(img), img)

    def test_color_jitter_stays_in_range(self):
        out = ColorJitter(0.5, 0.5, 0.5, rng=np.random.default_rng(1))(self._img())
        assert out.min() >= 0.0 and out.max() <= 1.0

    def test_color_jitter_zero_factors_identity(self):
        img = self._img()
        out = ColorJitter(0.0, 0.0, 0.0)(img)
        np.testing.assert_allclose(out, img, rtol=1e-5)

    def test_random_erasing_zeroes_rectangle(self):
        img = np.ones((3, 32, 32), dtype=np.float32)
        out = RandomErasing(p=1.0, rng=np.random.default_rng(0))(img)
        assert (out == 0).any()
        assert (out == 1).any()  # not everything erased

    def test_random_erasing_p0_identity(self):
        img = self._img()
        np.testing.assert_array_equal(RandomErasing(p=0.0)(img), img)

    def test_compose_order(self):
        img = self._img()
        pipeline = Compose([RandomHorizontalFlip(p=1.0), RandomHorizontalFlip(p=1.0)])
        np.testing.assert_array_equal(pipeline(img), img)  # double flip


class TestCache:
    def test_roundtrip_and_hit(self, tmp_path):
        from repro.data import cached_synthstl_arrays

        a1, l1 = cached_synthstl_arrays("train", size=24, n_per_class=3,
                                        seed=2, cache_dir=str(tmp_path))
        files = list(tmp_path.iterdir())
        assert len(files) == 1
        a2, l2 = cached_synthstl_arrays("train", size=24, n_per_class=3,
                                        seed=2, cache_dir=str(tmp_path))
        np.testing.assert_array_equal(a1, a2)
        np.testing.assert_array_equal(l1, l2)

    def test_cache_matches_uncached(self, tmp_path):
        from repro.data import cached_synthstl_arrays, make_synthstl_arrays

        cached, _ = cached_synthstl_arrays("test", size=24, n_per_class=2,
                                           seed=1, cache_dir=str(tmp_path))
        direct, _ = make_synthstl_arrays("test", size=24, n_per_class=2, seed=1)
        np.testing.assert_array_equal(cached, direct)

    def test_distinct_keys_per_config(self, tmp_path):
        from repro.data import cached_synthstl_arrays

        cached_synthstl_arrays("train", size=24, n_per_class=2, seed=0,
                               cache_dir=str(tmp_path))
        cached_synthstl_arrays("train", size=24, n_per_class=2, seed=1,
                               cache_dir=str(tmp_path))
        assert len(list(tmp_path.iterdir())) == 2

    def test_no_cache_dir_passthrough(self):
        from repro.data import cached_synthstl_arrays

        imgs, labels = cached_synthstl_arrays("train", size=24, n_per_class=2)
        assert imgs.shape == (20, 3, 24, 24)
