"""repro.kernels: registry semantics, shape helpers, backend parity.

The kernel layer's contract has three parts, each pinned here:

* **registry / selection** — backends register by name, `use_backend`
  is thread-local and restores on exit, the env default resolves, and
  unknown names fail loudly;
* **shapes** — the deduplicated NCHW geometry helpers agree with the
  layers that used to own private copies of the formulas;
* **parity** — for every registry model the ``fused`` backend agrees
  with ``reference`` to float rounding (≤1e-6 relative) and the
  ``reference`` backend is *bit-identical* to the model's own eval
  forward; integer fixed-point results are exactly backend-invariant;
  gradcheck passes routed through the dispatch layer under both
  backends.
"""

import numpy as np
import pytest

from repro import kernels
from repro.fixedpoint import QFormat, QuantizedMHSA2d
from repro.kernels import shapes
from repro.models import MODELS, build_model
from repro.nn import MHSA2d, functional
from repro.runtime import InferenceSession
from repro.tensor import Tensor, gradcheck


def _relative_close(ref, out, tol=1e-6):
    """≤ *tol* relative to the reference's magnitude (floor 1.0)."""
    scale = max(1.0, float(np.abs(ref).max()))
    return float(np.abs(np.asarray(ref) - np.asarray(out)).max()) <= tol * scale


class TestRegistry:
    def test_builtin_backends_registered(self):
        names = kernels.available_backends()
        assert "reference" in names and "fused" in names

    def test_default_backend_matches_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        assert kernels.default_backend_name() == "reference"
        monkeypatch.setenv("REPRO_BACKEND", "fused")
        assert kernels.default_backend_name() == "fused"

    def test_unknown_backend_raises(self):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            kernels.get_backend("cuda")
        with pytest.raises(ValueError, match="unknown kernel backend"):
            with kernels.use_backend("nope"):
                pass

    def test_use_backend_applies_and_restores(self):
        before = kernels.backend_name()
        with kernels.use_backend("fused"):
            assert kernels.backend_name() == "fused"
            with kernels.use_backend("reference"):
                assert kernels.backend_name() == "reference"
            assert kernels.backend_name() == "fused"
        assert kernels.backend_name() == before

    def test_use_backend_is_scoped_to_enter(self):
        """`use_backend` validates eagerly but applies only at
        __enter__ — constructing one must not leak a backend switch
        (imperative switching is `set_backend`, which warns)."""
        before = kernels.backend_name()
        switch = kernels.use_backend("fused")
        assert kernels.backend_name() == before
        with switch as backend:
            assert backend is kernels.get_backend("fused")
            assert kernels.backend_name() == "fused"
        assert kernels.backend_name() == before

    def test_set_backend_switches_and_warns_once(self):
        """The deprecated imperative path still works, returns the
        previous name, and warns exactly once per process."""
        kernels.registry._warned_once.discard("set_backend")
        before = kernels.backend_name()
        with pytest.warns(DeprecationWarning, match="set_backend"):
            prev = kernels.set_backend("fused")
        try:
            assert prev == before
            assert kernels.backend_name() == "fused"
        finally:
            import warnings

            with warnings.catch_warnings():
                warnings.simplefilter("error")
                kernels.set_backend(before)  # second call: no warning

    def test_resolve_backend_precedence(self, monkeypatch):
        """explicit arg > ambient context > $REPRO_BACKEND default."""
        explicit = kernels.resolve_backend("fused")
        assert explicit is kernels.get_backend("fused")
        with kernels.use_backend("fused"):
            assert kernels.resolve_backend() is kernels.get_backend("fused")
            # explicit still wins inside an ambient scope
            assert kernels.resolve_backend("reference") is kernels.get_backend(
                "reference"
            )
        assert kernels.resolve_backend() is kernels.get_backend(
            kernels.backend_name()
        )

    def test_thread_locality(self):
        import threading

        seen = {}

        def probe():
            seen["worker"] = kernels.backend_name()

        with kernels.use_backend("fused"):
            t = threading.Thread(target=probe)
            t.start()
            t.join()
        assert seen["worker"] == kernels.default_backend_name()

    def test_every_kernel_is_dispatchable(self):
        for name in kernels.KERNELS:
            fn = getattr(kernels, name)
            assert callable(fn)
            for backend in ("reference", "fused"):
                assert callable(getattr(kernels.get_backend(backend), name))


class TestShapes:
    """The deduplicated geometry helpers (satellite: one formula, one home)."""

    @pytest.mark.parametrize(
        "h,w,kh,kw,sh,sw,ph,pw",
        [
            (32, 32, 3, 3, 1, 1, 1, 1),
            (32, 32, 7, 7, 2, 2, 3, 3),
            (9, 7, 2, 2, 2, 2, 0, 0),
            (8, 8, 3, 3, 2, 2, 1, 1),
            (5, 5, 5, 5, 1, 1, 0, 0),
        ],
    )
    def test_conv_out_size_matches_brute_force(self, h, w, kh, kw, sh, sw, ph, pw):
        oh, ow = shapes.conv_out_size(h, w, kh, kw, sh, sw, ph, pw)
        # brute force: count valid anchor positions on the padded canvas
        assert oh == len(range(0, h + 2 * ph - kh + 1, sh))
        assert ow == len(range(0, w + 2 * pw - kw + 1, sw))

    def test_conv_out_size_rejects_empty_output(self):
        with pytest.raises(ValueError, match="empty"):
            shapes.conv_out_size(2, 2, 5, 5, 1, 1, 0, 0)

    def test_out_size_agrees_with_actual_conv_and_pool(self, rng):
        """The formula's one home must agree with what the kernels
        actually produce (this is what the dedup must not break)."""
        x = rng.normal(size=(2, 3, 11, 9)).astype(np.float32)
        w = rng.normal(size=(4, 3, 3, 3)).astype(np.float32)
        out = kernels.conv2d(x, w, stride=(2, 2), padding=(1, 1))
        assert out.shape[2:] == shapes.conv_out_size(11, 9, 3, 3, 2, 2, 1, 1)
        pooled = kernels.maxpool2d(x, (2, 2), (2, 2), (1, 1))
        assert pooled.shape[2:] == shapes.conv_out_size(11, 9, 2, 2, 2, 2, 1, 1)

    def test_pad_nchw(self, rng):
        x = rng.normal(size=(1, 2, 3, 3)).astype(np.float32)
        xp = shapes.pad_nchw(x, 1, 2)
        assert xp.shape == (1, 2, 5, 7)
        np.testing.assert_array_equal(xp[:, :, 1:4, 2:5], x)
        assert xp[0, 0, 0, 0] == 0.0
        assert shapes.pad_nchw(x, 0, 0) is x

    def test_pool_pad_value(self):
        assert shapes.pool_pad_value(np.dtype(np.float32)) == -np.inf
        assert shapes.pool_pad_value(np.dtype(np.int64)) == np.iinfo(np.int64).min

    def test_fixedpoint_maxpool_padding_identity_preserved(self, rng):
        """int-min padding can never win a max — the property the
        fixed-point layer's private copy used to guarantee."""
        from repro.fixedpoint.quantized_layers import fixed_maxpool2d

        x = (rng.normal(size=(1, 2, 4, 4)) * 100).astype(np.int64)
        out = fixed_maxpool2d(x, (3, 3), (1, 1), (1, 1))
        assert out.shape == (1, 2, 4, 4)
        assert out.max() == x.max()


def _model_input(batch=3, seed=0):
    rng = np.random.default_rng(seed)
    return rng.standard_normal((batch, 3, 32, 32)).astype(np.float32)


class TestBackendParity:
    @pytest.mark.parametrize("name", MODELS)
    def test_reference_bit_exact_and_fused_close(self, name):
        model = build_model(name, profile="tiny", inference=True)
        x = _model_input()
        with kernels.use_backend("reference"):
            eval_fwd = model(Tensor(x, _copy=False)).data
            ref = InferenceSession(model).predict_batch(x)
        assert np.array_equal(ref, eval_fwd)  # reference == autograd eval, bitwise
        with kernels.use_backend("fused"):
            fused = InferenceSession(model).predict_batch(x)
        assert _relative_close(ref, fused), (
            f"{name}: fused deviates by "
            f"{np.abs(ref - fused).max():.3g} (>1e-6 relative)"
        )

    def test_session_backend_kwarg_matches_use_backend(self):
        model = build_model("ode_botnet", profile="tiny", inference=True)
        x = _model_input(batch=2, seed=7)
        with kernels.use_backend("fused"):
            via_ctx = InferenceSession(model).predict_batch(x)
        via_kwarg = InferenceSession(model, backend="fused").predict_batch(x)
        assert np.array_equal(via_ctx, via_kwarg)

    def test_session_rejects_unknown_backend(self):
        model = build_model("odenet", profile="tiny", inference=True)
        with pytest.raises(ValueError, match="unknown kernel backend"):
            InferenceSession(model, backend="tpu")

    def test_eval_fast_path_parity_both_backends(self, rng):
        """functional.mhsa2d_eval vs the module forward, per backend."""
        m = MHSA2d(8, 3, 3, heads=2, attention_activation="relu",
                   out_layernorm=True, rng=rng)
        m.eval()
        x = rng.normal(size=(2, 8, 3, 3)).astype(np.float32)
        for backend in ("reference", "fused"):
            with kernels.use_backend(backend):
                from repro.tensor import no_grad

                with no_grad():
                    t_out = m(Tensor(x)).data
                np.testing.assert_allclose(
                    t_out, functional.mhsa2d_eval(m, x), rtol=1e-5, atol=1e-6
                )

    def test_fixedpoint_exact_across_backends(self, rng):
        """Integer accumulation is associative: quantised outputs must be
        *identical* whichever backend runs the integer GEMMs."""
        m = MHSA2d(8, 3, 3, heads=2, attention_activation="relu",
                   out_layernorm=True, rng=rng)
        x = rng.normal(size=(2, 8, 3, 3)).astype(np.float32)
        q = QuantizedMHSA2d(m, QFormat(32, 16), QFormat(24, 8))
        with kernels.use_backend("reference"):
            ref = q(x)
        with kernels.use_backend("fused"):
            fused = q(x)
        np.testing.assert_array_equal(ref, fused)

    @pytest.mark.parametrize("backend", ("reference", "fused"))
    def test_gradcheck_through_dispatch(self, backend, rng):
        """Autograd ops route forwards through the kernel seam; analytic
        gradients must match finite differences under both backends."""
        from repro import nn

        conv = nn.Conv2d(3, 4, kernel_size=3, stride=2, padding=1, rng=rng)
        x = rng.normal(size=(2, 3, 7, 7))
        with kernels.use_backend(backend):
            assert gradcheck(lambda t: conv(t).relu(), [x])
            w = rng.normal(size=(5, 4))
            assert gradcheck(
                lambda a, b: (a @ b).mean(axis=0).max(), [x.reshape(2, -1)[:, :5], w]
            )

    @pytest.mark.parametrize("backend", ("reference", "fused"))
    def test_kernel_level_parity(self, backend, rng):
        """Spot-check each kernel family directly at the dispatch layer."""
        ref = kernels.get_backend("reference")
        b = kernels.get_backend(backend)
        x = rng.normal(size=(2, 6, 8, 8)).astype(np.float32)
        w_dense = rng.normal(size=(4, 6, 3, 3)).astype(np.float32)
        w_pw = rng.normal(size=(4, 6, 1, 1)).astype(np.float32)
        w_dw = rng.normal(size=(6, 1, 3, 3)).astype(np.float32)
        cases = [
            (ref.conv2d(x, w_dense, (1, 1), (1, 1), 1),
             b.conv2d(x, w_dense, (1, 1), (1, 1), 1)),
            (ref.conv2d(x, w_pw, (1, 1), (0, 0), 1),
             b.conv2d(x, w_pw, (1, 1), (0, 0), 1)),
            (ref.conv2d(x, w_dw, (1, 1), (1, 1), 6),
             b.conv2d(x, w_dw, (1, 1), (1, 1), 6)),
            (ref.maxpool2d(x, (2, 2), (2, 2), (1, 1)),
             b.maxpool2d(x, (2, 2), (2, 2), (1, 1))),
            (ref.softmax(x, axis=-1), b.softmax(x, axis=-1)),
            (ref.batchnorm2d(x, x.mean(axis=(0, 2, 3), keepdims=True), 0.5),
             b.batchnorm2d(x, x.mean(axis=(0, 2, 3), keepdims=True), 0.5)),
        ]
        for got_ref, got_b in cases:
            assert _relative_close(got_ref, got_b)


# ODE-family registry models — the ones QuantizedODENetExecutor accepts.
ODE_MODELS = ("odenet", "ode_botnet")

# Q-format pairs spanning the degrade ladder (8/4-bit rungs), the
# paper's headline deployment format, and one pair wide enough to force
# the backend's exact-int64 fallback (accumulators > 53 bits).
QUANT_FORMATS = ("16(8)-12(4)", "8(4)-8(4)", "4(2)-4(2)", "32(16)-24(8)")


def _quantized_executor(name, fmt="16(8)-12(4)"):
    from repro.fixedpoint import QuantizedODENetExecutor, parse_format_pair

    model = build_model(name, profile="tiny", inference=True)
    ffmt, pfmt = parse_format_pair(fmt)
    return QuantizedODENetExecutor(model, ffmt, pfmt)


class TestQuantizedBackend:
    """The fourth backend: exact integer GEMMs rerouted through float
    BLAS.  Its whole contract is *bit-identity* with the scalar
    reference path — any deviation means the mantissa bound is wrong."""

    def test_quantized_backend_registered(self):
        assert "quantized" in kernels.available_backends()

    @pytest.mark.parametrize("name", ODE_MODELS)
    def test_executor_bit_identical_per_model(self, name):
        """Per registry model: executor.run under the quantized backend
        is bit-identical to the scalar reference path."""
        q = _quantized_executor(name)
        x = _model_input(batch=2)
        with kernels.use_backend("reference"):
            ref = q.run(x)
        with kernels.use_backend("quantized"):
            out = q.run(x)
        np.testing.assert_array_equal(ref, out)

    @pytest.mark.parametrize("fmt", QUANT_FORMATS)
    def test_executor_bit_identical_per_format(self, fmt):
        """Per Q-format profile — including a pair wide enough that the
        backend must fall back to exact int64 accumulation."""
        q = _quantized_executor("ode_botnet", fmt)
        x = _model_input(batch=2, seed=3)
        with kernels.use_backend("reference"):
            ref = q.run(x)
        with kernels.use_backend("quantized"):
            out = q.run(x)
        np.testing.assert_array_equal(ref, out)

    @pytest.mark.parametrize("name", ODE_MODELS)
    def test_session_quantized_backend_bit_identical(self, name):
        """SessionConfig(backend='quantized') packs a QuantizedPlan and
        must reproduce the executor's reference output bit-for-bit."""
        from repro.runtime import SessionConfig

        q = _quantized_executor(name)
        x = _model_input(batch=2, seed=11)
        with kernels.use_backend("reference"):
            ref = q.run(x)
        session = InferenceSession(q, config=SessionConfig(backend="quantized"))
        np.testing.assert_array_equal(ref, session.predict_batch(x))

    def test_quantized_mhsa_exact_under_quantized_backend(self, rng):
        """The existing backend-invariance contract extends to the new
        backend: identical integers whichever backend runs the GEMMs."""
        m = MHSA2d(8, 3, 3, heads=2, attention_activation="relu",
                   out_layernorm=True, rng=rng)
        x = rng.normal(size=(2, 8, 3, 3)).astype(np.float32)
        q = QuantizedMHSA2d(m, QFormat(16, 8), QFormat(12, 4))
        with kernels.use_backend("reference"):
            ref = q(x)
        with kernels.use_backend("quantized"):
            out = q(x)
        np.testing.assert_array_equal(ref, out)

    def test_integer_gemm_kernels_exact(self, rng):
        """Kernel-level: int64 operands through matmul/linear/conv2d
        come back as exact int64 results."""
        b = kernels.get_backend("quantized")
        ref = kernels.get_backend("reference")
        a = rng.integers(-(1 << 15), 1 << 15, size=(4, 64)).astype(np.int64)
        w = rng.integers(-(1 << 11), 1 << 11, size=(64, 8)).astype(np.int64)
        got = b.matmul(a, w)
        assert got.dtype == np.int64
        np.testing.assert_array_equal(got, ref.matmul(a, w))
        x = rng.integers(-(1 << 15), 1 << 15, size=(2, 6, 8, 8)).astype(np.int64)
        k = rng.integers(-(1 << 11), 1 << 11, size=(4, 6, 3, 3)).astype(np.int64)
        np.testing.assert_array_equal(
            b.conv2d(x, k, (1, 1), (1, 1), 1), ref.conv2d(x, k, (1, 1), (1, 1), 1)
        )

    def test_float_inputs_fall_through_to_fused(self, rng):
        """Float work is untouched: the quantized backend inherits the
        fused float paths verbatim."""
        b = kernels.get_backend("quantized")
        fused = kernels.get_backend("fused")
        x = rng.normal(size=(2, 6, 8, 8)).astype(np.float32)
        w = rng.normal(size=(4, 6, 3, 3)).astype(np.float32)
        np.testing.assert_array_equal(
            b.conv2d(x, w, (1, 1), (1, 1), 1),
            fused.conv2d(x, w, (1, 1), (1, 1), 1),
        )


class TestInstrumentation:
    def test_collect_counts_calls_seconds_bytes(self, rng):
        x = rng.normal(size=(4, 3, 8, 8)).astype(np.float32)
        w = rng.normal(size=(2, 3, 3, 3)).astype(np.float32)
        counters = kernels.KernelCounters()
        with kernels.collect(counters):
            kernels.conv2d(x, w, padding=(1, 1))
            kernels.conv2d(x, w, padding=(1, 1))
            kernels.relu(x)
        assert counters.calls["conv2d"] == 2
        assert counters.calls["relu"] == 1
        assert counters.seconds["conv2d"] > 0
        assert counters.bytes["relu"] >= x.nbytes
        top = counters.snapshot()
        assert set(top) == {"conv2d", "relu"}

    def test_collect_is_scoped(self, rng):
        x = rng.normal(size=(2, 2)).astype(np.float32)
        counters = kernels.KernelCounters()
        with kernels.collect(counters):
            kernels.relu(x)
        kernels.relu(x)  # outside the block: not recorded
        assert counters.calls["relu"] == 1

    def test_session_stats_kernel_breakdown(self):
        model = build_model("ode_botnet", profile="tiny", inference=True)
        session = InferenceSession(model, instrument=True)
        session.predict_batch(_model_input(batch=2, seed=4))
        snap = session.stats.snapshot()
        assert "kernels" in snap
        conv = snap["kernels"]["conv2d"]
        assert conv["calls"] > 0 and conv["seconds"] > 0 and conv["bytes"] > 0
        # the packed ODE plan's hot loop: matmul (attention) + conv
        assert "matmul" in snap["kernels"]

    def test_uninstrumented_session_has_no_kernel_entry(self):
        model = build_model("odenet", profile="tiny", inference=True)
        session = InferenceSession(model)
        session.predict_batch(_model_input(batch=2, seed=4))
        assert "kernels" not in session.stats.snapshot()

    def test_stats_reset_clears_kernels(self):
        model = build_model("odenet", profile="tiny", inference=True)
        session = InferenceSession(model, instrument=True)
        session.predict_batch(_model_input(batch=2, seed=4))
        session.stats.reset()
        assert "kernels" not in session.stats.snapshot()
