"""Tests for attention-map introspection and the sparsity claim."""

import numpy as np
import pytest

from repro import nn
from repro.nn import functional
from repro.profiling import (
    attention_entropy,
    attention_sparsity,
    head_diversity,
    summarize_attention,
)


def _pair(rng_seed=1):
    """ReLU and softmax MHSA with identical weights."""
    relu = nn.MHSA2d(16, 4, 4, heads=4, attention_activation="relu",
                     rng=np.random.default_rng(rng_seed))
    soft = nn.MHSA2d(16, 4, 4, heads=4, attention_activation="softmax",
                     rng=np.random.default_rng(rng_seed))
    return relu, soft


class TestAttentionMaps:
    def test_shape(self, rng):
        m = nn.MHSA2d(8, 3, 3, heads=2, rng=rng)
        attn = m.attention_maps(rng.normal(size=(2, 8, 3, 3)).astype(np.float32))
        assert attn.shape == (2, 2, 9, 9)

    def test_softmax_rows_are_distributions(self, rng):
        m = nn.MHSA2d(8, 3, 3, heads=2, attention_activation="softmax", rng=rng)
        attn = m.attention_maps(rng.normal(size=(1, 8, 3, 3)).astype(np.float32))
        np.testing.assert_allclose(attn.sum(axis=-1), 1.0, rtol=1e-8)
        assert (attn >= 0).all()

    def test_relu_rows_nonnegative(self, rng):
        m = nn.MHSA2d(8, 3, 3, heads=2, attention_activation="relu", rng=rng)
        attn = m.attention_maps(rng.normal(size=(1, 8, 3, 3)).astype(np.float32))
        assert (attn >= 0).all()

    def test_maps_consistent_with_forward(self, rng):
        """Re-deriving the output from the returned maps must match
        functional.mhsa2d_eval (no LayerNorm so the algebra is direct)."""
        m = nn.MHSA2d(8, 3, 3, heads=2, pos_enc="none",
                      attention_activation="softmax", rng=rng)
        x = rng.normal(size=(1, 8, 3, 3)).astype(np.float32)
        attn = m.attention_maps(x)
        tokens = x.reshape(1, 8, 9).transpose(0, 2, 1).astype(np.float64)
        v = (tokens @ m.w_v.data).reshape(1, 9, 2, 4).transpose(0, 2, 1, 3)
        out = (attn @ v).transpose(0, 2, 1, 3).reshape(1, 9, 8)
        ref = functional.mhsa2d_eval(m, x).reshape(1, 8, 9).transpose(0, 2, 1)
        np.testing.assert_allclose(out, ref, rtol=1e-4, atol=1e-5)


class TestSparsityClaim:
    def test_relu_attention_is_sparse_softmax_is_not(self, rng):
        """Paper Sec. V-A (via [25]): ReLU sparsifies attention."""
        relu, soft = _pair()
        x = rng.normal(size=(4, 16, 4, 4)).astype(np.float32)
        s_relu = attention_sparsity(relu.attention_maps(x))
        s_soft = attention_sparsity(soft.attention_maps(x))
        assert s_soft == 0.0
        assert s_relu > 0.25

    def test_relu_attention_lower_entropy(self, rng):
        relu, soft = _pair()
        x = rng.normal(size=(4, 16, 4, 4)).astype(np.float32)
        assert attention_entropy(relu.attention_maps(x)) < attention_entropy(
            soft.attention_maps(x)
        )


class TestStatsFunctions:
    def test_sparsity_extremes(self):
        assert attention_sparsity(np.zeros((1, 1, 3, 3))) == 1.0
        assert attention_sparsity(np.ones((1, 1, 3, 3))) == 0.0

    def test_entropy_uniform_is_log_n(self):
        n = 8
        attn = np.full((1, 1, 4, n), 1.0 / n)
        assert attention_entropy(attn) == pytest.approx(np.log(n), rel=1e-6)

    def test_entropy_peaked_is_zero(self):
        attn = np.zeros((1, 1, 2, 5))
        attn[..., 0] = 1.0
        assert attention_entropy(attn) == pytest.approx(0.0, abs=1e-6)

    def test_entropy_skips_dead_rows(self):
        attn = np.zeros((1, 1, 2, 4))
        attn[0, 0, 0] = [1.0, 0, 0, 0]  # row 1 fully suppressed
        assert attention_entropy(attn) == pytest.approx(0.0, abs=1e-6)

    def test_head_diversity_zero_for_identical_heads(self):
        row = np.random.default_rng(0).random((1, 1, 4, 4))
        attn = np.concatenate([row, row], axis=1)
        assert head_diversity(attn) == pytest.approx(0.0, abs=1e-12)

    def test_head_diversity_positive_for_different_heads(self, rng):
        attn = rng.random((1, 3, 4, 4))
        assert head_diversity(attn) > 0

    def test_head_diversity_single_head(self, rng):
        assert head_diversity(rng.random((1, 1, 4, 4))) == 0.0

    def test_summarize(self, rng):
        m = nn.MHSA2d(8, 3, 3, heads=2, attention_activation="relu", rng=rng)
        stats = summarize_attention(m, rng.normal(size=(1, 8, 3, 3)).astype(np.float32))
        assert set(stats) == {"sparsity", "entropy", "head_diversity", "shape"}
        assert stats["shape"] == (1, 2, 9, 9)
