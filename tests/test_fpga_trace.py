"""Tests for the accelerator execution trace / Gantt rendering."""

import pytest

from repro.experiments.designs import FIXED_DEFAULT, botnet_mhsa_design
from repro.fpga import execution_trace, format_gantt
from repro.fpga.axi import HP0, dma_cycles


class TestTrace:
    def test_total_matches_cycle_model(self):
        """Trace end == design.total_cycles() + the I/O DMA terms — the
        trace and the analytical model must tell one story."""
        design = botnet_mhsa_design(FIXED_DEFAULT)
        events = execution_trace(design)
        dma = dma_cycles(design, HP0)
        expected = design.total_cycles() + dma["input"] + dma["output"] + dma["rel_pos"]
        assert max(e.end for e in events) == expected

    def test_dataflow_total_matches_too(self):
        design = botnet_mhsa_design(FIXED_DEFAULT, dataflow=True)
        events = execution_trace(design)
        dma = dma_cycles(design, HP0)
        expected = design.total_cycles() + dma["input"] + dma["output"] + dma["rel_pos"]
        assert max(e.end for e in events) == expected

    def test_sequential_events_do_not_overlap(self):
        events = execution_trace(botnet_mhsa_design(FIXED_DEFAULT))
        for prev, cur in zip(events, events[1:]):
            assert cur.start >= prev.start  # chronological
        # in the sequential schedule, loads and projections alternate
        compute = [e for e in events if e.name.startswith(("load", "proj"))]
        for prev, cur in zip(compute, compute[1:]):
            assert cur.start >= prev.end

    def test_dataflow_overlaps_loads_with_projections(self):
        events = {e.name: e for e in
                  execution_trace(botnet_mhsa_design(FIXED_DEFAULT, dataflow=True))}
        # the W^k load starts while the W^q projection runs
        assert events["load W^k"].start < events["proj X·W^q"].end

    def test_three_projections_present(self):
        events = execution_trace(botnet_mhsa_design(FIXED_DEFAULT))
        names = [e.name for e in events]
        assert sum(n.startswith("proj") for n in names) == 3
        assert sum(n.startswith("load W") for n in names) == 3

    def test_gantt_renders_every_event(self):
        events = execution_trace(botnet_mhsa_design(FIXED_DEFAULT))
        text = format_gantt(events)
        for e in events:
            assert e.name in text
        assert "#" in text

    def test_no_relative_pos_variant(self):
        design = botnet_mhsa_design(FIXED_DEFAULT, use_relative_pos=False)
        names = [e.name for e in execution_trace(design)]
        assert "DMA: R in" not in names
        assert "QR^T" not in names
