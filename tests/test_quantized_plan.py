"""repro.fixedpoint.plan: the scale-folded QuantizedPlan.

The plan is the quantized analogue of ``PackedODENet``: a one-time
pack of an ODENet's quantized weight set into a pipeline of closures
over a float-carried integer raw, chosen per site to be exact.  Its
contract, pinned here:

* **construction / supported()** — packs exactly the models the
  executor accepts *and* whose formats fit the float64 carry; every
  unsupported shape is named, not silently mis-packed;
* **bit-identity** — ``plan.run`` equals ``QuantizedODENetExecutor.run``
  bit-for-bit, including formats wide enough to force exact-int64
  sites;
* **version / refresh** — the weight-derivation counter starts at 1
  and ticks on every :meth:`refresh`, and a refresh really re-reads
  mutated model weights;
* **session integration** — ``SessionConfig(backend="quantized")``
  reroutes an executor-backed session through a plan, and
  ``session.refresh()`` reaches it.
"""

import numpy as np
import pytest

from repro.fixedpoint import (
    QuantizedODENetExecutor,
    QuantizedPlan,
    parse_format_pair,
)
from repro.models import build_model
from repro.runtime import InferenceSession, SessionConfig


def _executor(name="ode_botnet", fmt="16(8)-12(4)", seed=0):
    model = build_model(name, profile="tiny", inference=True)
    ffmt, pfmt = parse_format_pair(fmt)
    return QuantizedODENetExecutor(model, ffmt, pfmt)


def _images(batch=2, seed=0):
    rng = np.random.default_rng(seed)
    return rng.standard_normal((batch, 3, 32, 32)).astype(np.float32)


class TestConstruction:
    def test_from_executor_shares_weight_derivation(self):
        ex = _executor()
        plan = QuantizedPlan.from_executor(ex)
        assert plan.model is ex.model
        assert plan.ffmt is ex.ffmt and plan.pfmt is ex.pfmt

    def test_direct_construction_matches_from_executor(self):
        ex = _executor()
        x = _images()
        direct = QuantizedPlan(ex.model, ex.ffmt, ex.pfmt)
        shared = QuantizedPlan.from_executor(ex)
        np.testing.assert_array_equal(direct.run(x), shared.run(x))

    def test_supported_accepts_executor_and_model(self):
        ex = _executor()
        assert QuantizedPlan.supported(ex)
        assert QuantizedPlan.supported(ex.model, ex.ffmt, ex.pfmt)

    def test_rejects_non_odenet(self):
        ffmt, pfmt = parse_format_pair("16(8)-12(4)")
        resnet = build_model("resnet50", profile="tiny", inference=True)
        assert not QuantizedPlan.supported(resnet, ffmt, pfmt)
        with pytest.raises(ValueError, match="cannot pack"):
            QuantizedPlan(resnet, ffmt, pfmt)

    def test_rejects_training_mode(self):
        model = build_model("odenet", profile="tiny")
        model.train()
        ffmt, pfmt = parse_format_pair("16(8)-12(4)")
        assert not QuantizedPlan.supported(model, ffmt, pfmt)
        with pytest.raises(ValueError, match="eval"):
            QuantizedPlan(model, ffmt, pfmt)

    def test_rejects_formats_past_the_float_carry(self):
        """Formats wider than the carry bound are the executor's job."""
        model = build_model("odenet", profile="tiny", inference=True)
        ffmt, pfmt = parse_format_pair("48(24)-48(24)")
        assert not QuantizedPlan.supported(model, ffmt, pfmt)
        with pytest.raises(ValueError, match="float64 carry"):
            QuantizedPlan(model, ffmt, pfmt)

    def test_rejects_non_euler_solver(self):
        from repro.ode import get_solver

        model = build_model("odenet", profile="tiny", inference=True)
        model.block1.solver = get_solver("rk4")
        ffmt, pfmt = parse_format_pair("16(8)-12(4)")
        assert not QuantizedPlan.supported(model, ffmt, pfmt)


class TestBitIdentity:
    @pytest.mark.parametrize("name", ("odenet", "ode_botnet"))
    def test_plan_matches_executor(self, name):
        ex = _executor(name)
        plan = QuantizedPlan.from_executor(ex)
        x = _images(batch=3)
        np.testing.assert_array_equal(plan.run(x), ex.run(x))

    @pytest.mark.parametrize(
        "fmt", ("16(8)-12(4)", "8(4)-8(4)", "4(2)-4(2)", "32(16)-24(8)")
    )
    def test_plan_matches_executor_per_format(self, fmt):
        """Including 32(16)-24(8), whose conv accumulators exceed the
        float64 mantissa and must run as exact int64 sites."""
        ex = _executor("ode_botnet", fmt)
        plan = QuantizedPlan.from_executor(ex)
        x = _images(batch=2, seed=5)
        np.testing.assert_array_equal(plan.run(x), ex.run(x))

    def test_callable_alias(self):
        ex = _executor("odenet")
        plan = QuantizedPlan.from_executor(ex)
        x = _images()
        np.testing.assert_array_equal(plan(x), plan.run(x))


class TestVersionAndRefresh:
    def test_version_starts_at_one_and_ticks(self):
        plan = QuantizedPlan.from_executor(_executor("odenet"))
        assert plan.version == 1
        plan.refresh()
        plan.refresh()
        assert plan.version == 3

    def test_refresh_requantizes_mutated_weights(self):
        ex = _executor("odenet")
        plan = QuantizedPlan.from_executor(ex)
        x = _images()
        before = plan.run(x)
        ex.model.fc.weight.data[:] = -ex.model.fc.weight.data
        plan.refresh()
        after = plan.run(x)
        assert not np.array_equal(before, after)
        # the refreshed plan agrees with a freshly packed executor
        fresh = QuantizedODENetExecutor(ex.model, ex.ffmt, ex.pfmt)
        np.testing.assert_array_equal(after, fresh.run(x))

    def test_repr_names_formats_and_version(self):
        plan = QuantizedPlan.from_executor(_executor("odenet"))
        text = repr(plan)
        assert "QuantizedPlan" in text and "version=1" in text


class TestSessionIntegration:
    def test_session_reroutes_executor_through_plan(self):
        ex = _executor("ode_botnet")
        session = InferenceSession(
            ex, config=SessionConfig(backend="quantized")
        )
        assert isinstance(session._plan, QuantizedPlan)
        x = _images(batch=2, seed=9)
        np.testing.assert_array_equal(session.predict_batch(x), ex.run(x))

    def test_session_without_quantized_backend_keeps_executor_path(self):
        ex = _executor("odenet")
        session = InferenceSession(ex)
        assert not isinstance(session._plan, QuantizedPlan)
        x = _images()
        np.testing.assert_array_equal(session.predict_batch(x), ex.run(x))

    def test_session_accepts_plan_directly(self):
        ex = _executor("odenet")
        plan = QuantizedPlan.from_executor(ex)
        session = InferenceSession(plan)
        assert session.backend == "quantized"
        x = _images()
        np.testing.assert_array_equal(session.predict_batch(x), ex.run(x))

    def test_session_refresh_reaches_the_plan(self):
        ex = _executor("odenet")
        session = InferenceSession(
            ex, config=SessionConfig(backend="quantized")
        )
        assert session._plan.version == 1
        session.refresh()
        assert session._plan.version == 2
