"""Unit tests for element-wise ops: values and gradients."""

import numpy as np
import pytest

from repro.tensor import Tensor, gradcheck


class TestArithmetic:
    def test_add_values(self, rng):
        a, b = rng.normal(size=(3, 4)), rng.normal(size=(3, 4))
        out = Tensor(a) + Tensor(b)
        np.testing.assert_allclose(out.data, a + b, rtol=1e-6)

    def test_add_broadcast_row(self, rng):
        a, b = rng.normal(size=(3, 4)), rng.normal(size=(4,))
        gradcheck(lambda x, y: x + y, [a, b])

    def test_add_broadcast_scalar(self, rng):
        a = rng.normal(size=(2, 3))
        out = Tensor(a) + 5.0
        np.testing.assert_allclose(out.data, a + 5.0, rtol=1e-6)

    def test_radd(self, rng):
        a = rng.normal(size=(2,))
        out = 1.0 + Tensor(a)
        np.testing.assert_allclose(out.data, a + 1.0, rtol=1e-6)

    def test_sub_grad(self, rng):
        gradcheck(lambda x, y: x - y, [rng.normal(size=(3, 2)), rng.normal(size=(2,))])

    def test_rsub(self, rng):
        a = rng.normal(size=(3,))
        out = 2.0 - Tensor(a)
        np.testing.assert_allclose(out.data, 2.0 - a, rtol=1e-6)

    def test_mul_grad_broadcast(self, rng):
        gradcheck(
            lambda x, y: x * y,
            [rng.normal(size=(2, 3, 4)), rng.normal(size=(3, 1))],
        )

    def test_div_grad(self, rng):
        a = rng.normal(size=(3, 3))
        b = rng.uniform(1.0, 2.0, size=(3, 3))
        gradcheck(lambda x, y: x / y, [a, b])

    def test_rtruediv(self, rng):
        b = rng.uniform(1.0, 2.0, size=(4,))
        out = 1.0 / Tensor(b)
        np.testing.assert_allclose(out.data, 1.0 / b, rtol=1e-6)

    def test_neg(self, rng):
        gradcheck(lambda x: -x, [rng.normal(size=(5,))])

    def test_pow_grad(self, rng):
        a = rng.uniform(0.5, 2.0, size=(4,))
        gradcheck(lambda x: x ** 3, [a])

    def test_pow_negative_exponent(self, rng):
        a = rng.uniform(1.0, 2.0, size=(4,))
        gradcheck(lambda x: x ** -0.5, [a])


class TestUnaryMath:
    @pytest.mark.parametrize(
        "name", ["exp", "tanh", "sigmoid", "gelu", "abs"]
    )
    def test_unary_grads(self, rng, name):
        a = rng.normal(size=(3, 4))
        gradcheck(lambda x: getattr(x, name)(), [a])

    def test_log_grad(self, rng):
        a = rng.uniform(0.5, 3.0, size=(3, 4))
        gradcheck(lambda x: x.log(), [a])

    def test_sqrt_grad(self, rng):
        a = rng.uniform(0.5, 3.0, size=(3,))
        gradcheck(lambda x: x.sqrt(), [a])

    def test_exp_log_roundtrip(self, rng):
        a = rng.uniform(0.5, 2.0, size=(5,))
        out = Tensor(a).log().exp()
        np.testing.assert_allclose(out.data, a, rtol=1e-5)

    def test_relu_values_and_sparsity(self, rng):
        a = rng.normal(size=(100,))
        out = Tensor(a).relu()
        assert (out.data >= 0).all()
        np.testing.assert_allclose(out.data, np.maximum(a, 0), rtol=1e-6)

    def test_relu_grad_masks_negatives(self):
        t = Tensor(np.array([-1.0, 2.0, -3.0, 4.0]), requires_grad=True)
        t.relu().sum().backward()
        np.testing.assert_array_equal(t.grad, [0.0, 1.0, 0.0, 1.0])

    def test_leaky_relu(self, rng):
        a = rng.normal(size=(10,))
        out = Tensor(a).leaky_relu(0.1)
        np.testing.assert_allclose(out.data, np.where(a > 0, a, 0.1 * a), rtol=1e-6)
        gradcheck(lambda x: x.leaky_relu(0.1), [a])

    def test_clip_grad(self, rng):
        a = rng.normal(size=(20,))
        gradcheck(lambda x: x.clip(-0.5, 0.5), [a + 0.001])  # avoid kinks

    def test_maximum_grad(self, rng):
        a, b = rng.normal(size=(6,)), rng.normal(size=(6,))
        gradcheck(lambda x, y: x.maximum(y), [a, b])

    def test_maximum_tie_splits_gradient(self):
        a = Tensor(np.array([1.0]), requires_grad=True)
        b = Tensor(np.array([1.0]), requires_grad=True)
        a.maximum(b).sum().backward()
        assert a.grad[0] == pytest.approx(0.5)
        assert b.grad[0] == pytest.approx(0.5)


class TestWhere:
    def test_where_values(self, rng):
        from repro.tensor import where

        cond = rng.normal(size=(4,)) > 0
        a, b = rng.normal(size=(4,)), rng.normal(size=(4,))
        out = where(cond, Tensor(a), Tensor(b))
        np.testing.assert_allclose(out.data, np.where(cond, a, b), rtol=1e-6)

    def test_where_grad_routing(self, rng):
        from repro.tensor import where

        cond = np.array([True, False, True])
        a = Tensor(np.ones(3), requires_grad=True)
        b = Tensor(np.ones(3), requires_grad=True)
        where(cond, a, b).sum().backward()
        np.testing.assert_array_equal(a.grad, [1, 0, 1])
        np.testing.assert_array_equal(b.grad, [0, 1, 0])


class TestComparisons:
    def test_comparisons_return_numpy_bools(self, rng):
        a = Tensor(rng.normal(size=(3,)))
        assert isinstance(a > 0, np.ndarray)
        assert (a > 0).dtype == bool
        assert isinstance(a <= 0.5, np.ndarray)
