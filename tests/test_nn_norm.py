"""Tests for BatchNorm2d / LayerNorm / GroupNorm."""

import numpy as np
import pytest

from repro import nn
from repro.tensor import Tensor, gradcheck


class TestBatchNorm2d:
    def test_train_normalizes_batch(self, rng):
        bn = nn.BatchNorm2d(3)
        x = Tensor((rng.normal(size=(8, 3, 5, 5)) * 4 + 2).astype(np.float32))
        out = bn(x).data
        assert out.mean(axis=(0, 2, 3)) == pytest.approx(np.zeros(3), abs=1e-5)
        assert out.var(axis=(0, 2, 3)) == pytest.approx(np.ones(3), abs=1e-3)

    def test_running_stats_converge(self, rng):
        bn = nn.BatchNorm2d(2, momentum=0.5)
        for _ in range(50):
            x = Tensor((rng.normal(size=(16, 2, 4, 4)) * 3 + 1).astype(np.float32))
            bn(x)
        assert bn.running_mean == pytest.approx(np.ones(2), abs=0.2)
        assert bn.running_var == pytest.approx(np.full(2, 9.0), rel=0.2)

    def test_eval_uses_running_stats(self, rng):
        bn = nn.BatchNorm2d(2)
        bn._set_buffer("running_mean", np.array([1.0, -1.0]))
        bn._set_buffer("running_var", np.array([4.0, 4.0]))
        bn.eval()
        x = np.zeros((1, 2, 1, 1), dtype=np.float32)
        out = bn(Tensor(x)).data
        assert out[0, 0, 0, 0] == pytest.approx(-0.5, rel=1e-3)
        assert out[0, 1, 0, 0] == pytest.approx(0.5, rel=1e-3)

    def test_affine_params(self, rng):
        bn = nn.BatchNorm2d(3)
        bn.weight.data[:] = 2.0
        bn.bias.data[:] = 1.0
        out = bn(Tensor(rng.normal(size=(8, 3, 4, 4)).astype(np.float32))).data
        assert out.mean() == pytest.approx(1.0, abs=1e-4)

    def test_no_affine(self, rng):
        bn = nn.BatchNorm2d(3, affine=False)
        assert bn.num_parameters() == 0
        bn(Tensor(rng.normal(size=(2, 3, 2, 2)).astype(np.float32)))

    def test_rejects_non_4d(self, rng):
        with pytest.raises(ValueError):
            nn.BatchNorm2d(3)(Tensor(rng.normal(size=(2, 3))))

    def test_gradcheck(self, rng):
        bn = nn.BatchNorm2d(2)
        for p in bn.parameters():
            p.data = p.data.astype(np.float64)
        gradcheck(lambda x: bn(x), [rng.normal(size=(3, 2, 2, 2))])

    def test_eval_does_not_update_stats(self, rng):
        bn = nn.BatchNorm2d(2)
        bn.eval()
        before = bn.running_mean.copy()
        bn(Tensor(rng.normal(size=(4, 2, 3, 3)).astype(np.float32)))
        np.testing.assert_array_equal(bn.running_mean, before)


class TestLayerNorm:
    def test_normalizes_last_dim(self, rng):
        ln = nn.LayerNorm(8)
        x = Tensor((rng.normal(size=(4, 8)) * 3 + 5).astype(np.float32))
        out = ln(x).data
        np.testing.assert_allclose(out.mean(axis=-1), 0.0, atol=1e-5)
        np.testing.assert_allclose(out.std(axis=-1), 1.0, atol=1e-2)

    def test_multi_dim_normalized_shape(self, rng):
        ln = nn.LayerNorm((3, 4))
        out = ln(Tensor(rng.normal(size=(2, 3, 4)).astype(np.float32))).data
        assert abs(out[0].mean()) < 1e-5

    def test_shape_mismatch_raises(self, rng):
        with pytest.raises(ValueError):
            nn.LayerNorm(8)(Tensor(rng.normal(size=(2, 7))))

    def test_param_count(self):
        assert nn.LayerNorm(64).num_parameters() == 128

    def test_gradcheck(self, rng):
        ln = nn.LayerNorm(4)
        for p in ln.parameters():
            p.data = p.data.astype(np.float64)
        gradcheck(lambda x: ln(x), [rng.normal(size=(3, 4))])


class TestGroupNorm:
    def test_group_stats(self, rng):
        gn = nn.GroupNorm(2, 4)
        x = Tensor((rng.normal(size=(2, 4, 5, 5)) * 3 + 1).astype(np.float32))
        out = gn(x).data
        grouped = out.reshape(2, 2, 2, 5, 5)
        np.testing.assert_allclose(grouped.mean(axis=(2, 3, 4)), 0.0, atol=1e-5)

    def test_invalid_groups_raises(self):
        with pytest.raises(ValueError):
            nn.GroupNorm(3, 4)

    def test_batch_size_independence(self, rng):
        """Unlike BatchNorm, GroupNorm output for one sample does not
        depend on the rest of the batch."""
        gn = nn.GroupNorm(2, 4)
        x1 = rng.normal(size=(1, 4, 3, 3)).astype(np.float32)
        x2 = rng.normal(size=(1, 4, 3, 3)).astype(np.float32)
        alone = gn(Tensor(x1)).data
        batched = gn(Tensor(np.concatenate([x1, x2]))).data[:1]
        np.testing.assert_allclose(alone, batched, rtol=1e-5)

    def test_gradcheck(self, rng):
        gn = nn.GroupNorm(2, 4)
        for p in gn.parameters():
            p.data = p.data.astype(np.float64)
        gradcheck(lambda x: gn(x), [rng.normal(size=(2, 4, 2, 2))])
