"""Property-based tests (hypothesis) on layer invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import nn, ode
from repro.tensor import Tensor, no_grad


@settings(max_examples=25, deadline=None)
@given(
    st.integers(1, 3),   # batch
    st.integers(1, 4),   # in channels
    st.integers(1, 6),   # out channels
    st.sampled_from([1, 3]),   # kernel
    st.sampled_from([1, 2]),   # stride
    st.sampled_from([0, 1]),   # padding
    st.integers(4, 9),   # spatial size
)
def test_conv_output_shape_formula(b, cin, cout, k, s, p, hw):
    if hw + 2 * p < k:
        return
    rng = np.random.default_rng(b * 100 + cin)
    conv = nn.Conv2d(cin, cout, k, stride=s, padding=p, rng=rng)
    x = Tensor(rng.normal(size=(b, cin, hw, hw)).astype(np.float32))
    with no_grad():
        out = conv(x)
    expected = (hw + 2 * p - k) // s + 1
    assert out.shape == (b, cout, expected, expected)


@settings(max_examples=20, deadline=None)
@given(st.integers(2, 8), st.integers(2, 16))
def test_batchnorm_normalizes_any_shape(batch, channels):
    rng = np.random.default_rng(batch * 31 + channels)
    bn = nn.BatchNorm2d(channels)
    x = Tensor((rng.normal(size=(batch, channels, 3, 3)) * 5 + 3).astype(np.float32))
    out = bn(x).data
    assert np.abs(out.mean(axis=(0, 2, 3))).max() < 1e-4


@settings(max_examples=15, deadline=None)
@given(st.sampled_from([2, 4, 8]), st.sampled_from([1, 2, 4]),
       st.integers(2, 4))
def test_mhsa_shape_preservation(channels, heads, hw):
    if channels % heads:
        return
    rng = np.random.default_rng(channels * 10 + heads)
    m = nn.MHSA2d(channels, hw, hw, heads=heads, rng=rng)
    x = Tensor(rng.normal(size=(2, channels, hw, hw)).astype(np.float32))
    with no_grad():
        assert m(x).shape == x.shape


@settings(max_examples=15, deadline=None)
@given(st.integers(1, 8))
def test_ode_block_steps_never_change_shape(steps):
    rng = np.random.default_rng(steps)
    block = ode.ODEBlock(ode.ConvODEFunc(4, rng=rng), steps=steps)
    x = Tensor(rng.normal(size=(1, 4, 4, 4)).astype(np.float32))
    with no_grad():
        assert block(x).shape == x.shape


@settings(max_examples=15, deadline=None)
@given(st.floats(0.0, 0.9), st.integers(100, 2000))
def test_dropout_keep_fraction(p, n):
    d = nn.Dropout(p, rng=np.random.default_rng(int(p * 100) + n))
    out = d(Tensor(np.ones(n, dtype=np.float32)))
    kept = float((out.data != 0).mean())
    assert kept == pytest.approx(1.0 - p, abs=0.15)


@settings(max_examples=15, deadline=None)
@given(st.integers(1, 5), st.integers(1, 10))
def test_linear_batch_independence(batch, features):
    """Each row of a Linear output depends only on its own input row."""
    rng = np.random.default_rng(batch + features * 7)
    lin = nn.Linear(features, 3, rng=rng)
    x = rng.normal(size=(batch, features)).astype(np.float32)
    with no_grad():
        full = lin(Tensor(x)).data
        rows = np.concatenate(
            [lin(Tensor(x[i : i + 1])).data for i in range(batch)]
        )
    np.testing.assert_allclose(full, rows, rtol=1e-5, atol=1e-6)


@settings(max_examples=15, deadline=None)
@given(st.integers(4, 16))
def test_layernorm_scale_invariance(dim):
    """LayerNorm(x) ≈ LayerNorm(a*x) for positive scaling (affine off;
    exact up to the eps regulariser)."""
    rng = np.random.default_rng(dim)
    ln = nn.LayerNorm(dim, affine=False)
    x = rng.normal(size=(3, dim)).astype(np.float64)
    a = ln(Tensor(x, dtype=np.float64)).data
    b = ln(Tensor(3.7 * x, dtype=np.float64)).data
    np.testing.assert_allclose(a, b, atol=1e-3)
