"""Tests for :mod:`repro.compile` — the fused-plan compiler.

Four contracts:

* **parity** — the ``compiled`` backend agrees with ``reference`` to
  ≤1e-6 on every packable registry model (BN/step-size folding may
  reassociate float ops, never change the math);
* **schedule cache** — hit/miss/invalidation round-trips through the
  on-disk cache keyed by graph hash × machine fingerprint, honouring
  ``$REPRO_COMPILE_CACHE`` and the compiler version;
* **aliasing safety** — the arena op program's build-time bookkeeping
  catches reordered and aliased buffers, including across solver
  iterations, with the Euler state exempt as loop-carried;
* **zero per-step allocation** — once bound, the Euler block bodies run
  with numpy's Python-level array constructors forbidden outright.
"""

import json

import numpy as np
import pytest

from repro import kernels
from repro.compile import (
    COMPILE_VERSION,
    CompiledPlan,
    OpList,
    PlanValidationError,
    cache_path,
    compile_packed,
    default_schedule,
    graph_hash,
    load_schedule,
    machine_fingerprint,
    save_schedule,
    schedule_axes,
)
from repro.models import MODELS, build_model
from repro.runtime import InferenceSession, PackedODENet

RNG = np.random.default_rng(0)


def _packable_models():
    names = []
    for name in MODELS:
        model = build_model(name, profile="tiny", inference=True)
        if PackedODENet.supported(model):
            names.append(name)
    return names


PACKABLE = _packable_models()


@pytest.fixture
def schedule_cache(tmp_path, monkeypatch):
    """An isolated on-disk schedule cache."""
    monkeypatch.setenv("REPRO_COMPILE_CACHE", str(tmp_path))
    return tmp_path


# ----------------------------------------------------------------------
# parity
# ----------------------------------------------------------------------
class TestCompiledParity:
    def test_registry_covers_the_paper_models(self):
        assert set(PACKABLE) == {"odenet", "ode_botnet"}

    @pytest.mark.parametrize("name", PACKABLE)
    def test_compiled_matches_reference_within_1e6(self, name):
        model = build_model(name, profile="tiny", inference=True)
        session = InferenceSession(model)
        x = RNG.standard_normal((4, 3, 32, 32)).astype(np.float32)
        with kernels.use_backend("reference"):
            ref = session.predict_batch(x)
        with kernels.use_backend("compiled"):
            out = session.predict_batch(x)
        np.testing.assert_allclose(out, ref, rtol=0, atol=1e-6)

    @pytest.mark.parametrize("name", PACKABLE)
    def test_every_schedule_point_matches_reference(self, name):
        """Parity is schedule-independent: the autotuner may pick any
        point of the search space, so every choice must agree."""
        model = build_model(name, profile="tiny", inference=True)
        packed = PackedODENet(model)
        x = RNG.standard_normal((2, 3, 32, 32)).astype(np.float32)
        with kernels.use_backend("reference"):
            ref = InferenceSession(model).predict_batch(x)
        base = default_schedule(packed)
        for key, choices in schedule_axes(packed):
            for choice in choices:
                schedule = dict(base)
                schedule[key] = choice
                out = CompiledPlan(packed, schedule)(x)
                np.testing.assert_allclose(
                    out, ref, rtol=0, atol=1e-6,
                    err_msg=f"{key}={choice}",
                )

    def test_compiled_is_deterministic(self):
        model = build_model("odenet", profile="tiny", inference=True)
        plan = compile_packed(PackedODENet(model))
        x = RNG.standard_normal((2, 3, 32, 32)).astype(np.float32)
        assert np.array_equal(plan(x), plan(x))


# ----------------------------------------------------------------------
# schedule cache
# ----------------------------------------------------------------------
class TestScheduleCache:
    def _packed(self, name="odenet"):
        return PackedODENet(
            build_model(name, profile="tiny", inference=True)
        )

    def test_cache_dir_honours_env(self, schedule_cache):
        packed = self._packed()
        assert cache_path(packed).startswith(str(schedule_cache))

    def test_miss_then_hit_round_trip(self, schedule_cache):
        packed = self._packed()
        assert load_schedule(packed) is None  # cold cache: miss

        schedule = default_schedule(packed)
        schedule["time_planes"] = "runtime"
        path = save_schedule(packed, schedule, tuned=True, best_ms=1.5)
        assert path == cache_path(packed)

        entry = load_schedule(packed)
        assert entry is not None
        assert entry["schedule"] == schedule
        assert entry["tuned"] is True
        assert entry["graph_hash"] == graph_hash(packed)
        assert entry["machine"] == machine_fingerprint()

    def test_compile_packed_picks_up_cached_schedule(self, schedule_cache):
        packed = self._packed()
        schedule = default_schedule(packed)
        schedule["time_planes"] = "runtime"
        save_schedule(packed, schedule)
        assert compile_packed(packed).schedule == schedule

    def test_graph_change_is_a_miss(self, schedule_cache):
        odenet = self._packed("odenet")
        botnet = self._packed("ode_botnet")
        assert graph_hash(odenet) != graph_hash(botnet)
        save_schedule(odenet, default_schedule(odenet))
        # the other architecture keys a different file: still cold
        assert cache_path(botnet) != cache_path(odenet)
        assert load_schedule(botnet) is None

    def test_compiler_version_bump_invalidates(self, schedule_cache):
        packed = self._packed()
        path = save_schedule(packed, default_schedule(packed))
        with open(path, encoding="utf-8") as fh:
            entry = json.load(fh)
        assert entry["compile_version"] == COMPILE_VERSION
        entry["compile_version"] = "0.0-stale"
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(entry, fh)
        assert load_schedule(packed) is None

    def test_corrupt_cache_file_is_a_miss(self, schedule_cache):
        packed = self._packed()
        path = save_schedule(packed, default_schedule(packed))
        with open(path, "w", encoding="utf-8") as fh:
            fh.write("{not json")
        assert load_schedule(packed) is None
        # and compile still works off the heuristic default
        assert compile_packed(packed).schedule == default_schedule(packed)

    def test_graph_hash_is_structural_not_weights(self):
        a = PackedODENet(
            build_model("odenet", profile="tiny", seed=0, inference=True)
        )
        b = PackedODENet(
            build_model("odenet", profile="tiny", seed=1, inference=True)
        )
        assert graph_hash(a) == graph_hash(b)


# ----------------------------------------------------------------------
# arena aliasing safety
# ----------------------------------------------------------------------
class TestAliasValidation:
    def _noop(self):
        return lambda: None

    def test_straight_line_program_validates(self):
        ops = OpList()
        ops.add("a", self._noop(), writes=("x",))
        ops.add("b", self._noop(), reads=("x",), writes=("y",))
        assert ops.validate()

    def test_clobbered_read_is_caught(self):
        """An op reading a buffer rewritten since its producer ran —
        the schedule aliased two logical tensors onto one buffer."""
        ops = OpList()
        ops.add("produce", self._noop(), writes=("x",))
        ops.add("clobber", self._noop(), writes=("x",))
        ops.add("consume", self._noop(), reads=("x",), writes=("y",))
        consume = ops.ops[2]
        # model the hazard: consume was built against write #0
        ops.ops[2] = type(consume)(
            consume.kernel, consume.fn, (("x", 0),), consume.writes,
            consume.tag,
        )
        with pytest.raises(PlanValidationError, match="'x'"):
            ops.validate()

    def test_cross_iteration_reuse_is_caught(self):
        """A buffer read before its (only) writer is clean on pass one
        (it reads external input) but dirty on pass two — exactly the
        consecutive-solver-iteration hazard validate() replays for."""
        ops = OpList()
        ops.add("consume", self._noop(), reads=("scratch",))
        ops.add("produce", self._noop(), writes=("scratch",))
        with pytest.raises(PlanValidationError, match="scratch"):
            ops.validate()

    def test_loop_carried_state_is_exempt(self):
        """The Euler ``z`` legitimately flows between iterations."""
        ops = OpList()
        ops.add("step", self._noop(), reads=("z",), writes=("z",))
        assert ops.validate(loop_carried=("z",))
        with pytest.raises(PlanValidationError):
            ops.validate()

    @pytest.mark.parametrize("name", PACKABLE)
    def test_bound_plans_validate(self, name):
        model = build_model(name, profile="tiny", inference=True)
        plan = compile_packed(PackedODENet(model))
        x = RNG.standard_normal((2, 3, 32, 32)).astype(np.float32)
        plan(x)  # bind
        bound = plan._bound(x.shape, x.dtype)
        assert bound.validate()
        assert bound.block_ops, "plan bound no ODE block programs"


# ----------------------------------------------------------------------
# zero per-step allocation
# ----------------------------------------------------------------------
#: the Python-level numpy constructors a step body could reach for
_CONSTRUCTORS = (
    "empty", "zeros", "ones", "full", "array", "concatenate", "stack",
    "pad", "ascontiguousarray", "empty_like", "zeros_like", "ones_like",
)


class _AllocationForbidden(AssertionError):
    pass


class _forbid_numpy_allocation:
    """Monkeypatch numpy's constructors to raise (restores on exit)."""

    def __enter__(self):
        self._saved = {name: getattr(np, name) for name in _CONSTRUCTORS}

        def _make(name):
            def _raise(*args, **kwargs):
                raise _AllocationForbidden(
                    f"np.{name} called inside a compiled Euler step"
                )
            return _raise

        for name in self._saved:
            setattr(np, name, _make(name))
        return self

    def __exit__(self, exc_type, exc, tb):
        for name, fn in self._saved.items():
            setattr(np, name, fn)
        return False


class TestZeroStepAllocation:
    def test_guard_actually_guards(self):
        with pytest.raises(_AllocationForbidden):
            with _forbid_numpy_allocation():
                np.zeros(3)

    @pytest.mark.parametrize("name", PACKABLE)
    def test_euler_blocks_run_allocation_free(self, name):
        """After the warm-up bind, the ODE block stages — the Euler
        loop, the hot path the arena exists for — execute with every
        numpy constructor replaced by a tripwire."""
        model = build_model(name, profile="tiny", inference=True)
        plan = compile_packed(PackedODENet(model))
        x = RNG.standard_normal((2, 3, 32, 32)).astype(np.float32)
        ref = plan(x)  # warm-up: bind geometry, allocate the arena

        bound = plan._bound(x.shape, x.dtype)
        block_stages = [s for s in bound.stages if s[2]]
        assert block_stages, "no ODE block stages bound"
        h = x
        ran = 0
        for kernel, fn, is_block in bound.stages:
            if is_block:
                with _forbid_numpy_allocation():
                    h = fn(h)
                ran += 1
            else:
                h = fn(h)
        assert ran == len(block_stages)
        np.testing.assert_array_equal(h, ref)
