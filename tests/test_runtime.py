"""InferenceSession / MicroBatcher: parity, unification, statistics.

The runtime's contract is strict: ``predict_batch`` must match the
eval-mode training forward *bitwise* for float models (packed plan and
generic plan alike, including adaptive solvers) and *exactly* equal
``QuantizedODENetExecutor.run`` for quantized models.  These tests pin
that contract for every registry model, plus the micro-batcher's
correctness and the serving statistics.
"""

import warnings

import numpy as np
import pytest

from repro import kernels
from repro.fixedpoint import QFormat, QuantizedODENetExecutor
from repro.models import MODELS, build_model
from repro.nn import functional
from repro.runtime import (
    BatcherStopped,
    InferenceSession,
    MicroBatcher,
    ModulePlan,
    PackedODENet,
    SessionStats,
)
from repro.tensor import Tensor, inference_mode, is_grad_enabled


def _input_for(model, profile="tiny", batch=3, seed=0):
    size = {"tiny": 32}[profile]
    rng = np.random.default_rng(seed)
    return rng.standard_normal((batch, 3, size, size)).astype(np.float32)


class TestSessionParity:
    @pytest.mark.parametrize("name", MODELS)
    def test_matches_training_mode_forward(self, name):
        model = build_model(name, profile="tiny")
        x = _input_for(model)
        model.eval()
        ref = model(Tensor(x, _copy=False)).data

        session = InferenceSession(build_model(name, profile="tiny"))
        out = session.predict_batch(x)
        np.testing.assert_allclose(out, ref, rtol=0, atol=1e-6)

    @pytest.mark.parametrize("name", ("odenet", "ode_botnet"))
    def test_packed_plan_is_bit_exact(self, name):
        model = build_model(name, profile="tiny", inference=True)
        x = _input_for(model, batch=4, seed=3)
        ref = model(Tensor(x, _copy=False)).data
        session = InferenceSession(model)
        assert session.backend == "packed"
        out = session.predict_batch(x)
        if kernels.resolve_backend() is kernels.get_backend("compiled"):
            # The compiled plan folds BN into conv weights, so it is
            # float-reassociated rather than bit-identical.
            np.testing.assert_allclose(out, ref, rtol=0, atol=1e-6)
        else:
            assert np.array_equal(out, ref)

    def test_dopri5_falls_back_to_module_plan(self):
        model = build_model(
            "ode_botnet", profile="tiny", solver="dopri5", inference=True
        )
        x = _input_for(model, batch=2, seed=5)
        ref = model(Tensor(x, _copy=False)).data
        session = InferenceSession(model)
        assert session.backend == "module"
        assert np.array_equal(session.predict_batch(x), ref)

    def test_quantized_backend_is_exact(self):
        model = build_model("ode_botnet", profile="tiny", inference=True)
        executor = QuantizedODENetExecutor(
            model, QFormat(32, 16), QFormat(24, 8)
        )
        x = _input_for(model, batch=2, seed=1)
        session = InferenceSession(executor)
        assert session.backend == "quantized"
        assert np.array_equal(session.predict_batch(x), executor.run(x))

    def test_predict_single_sample_matches_batch_row(self):
        session = InferenceSession(
            build_model("ode_botnet", profile="tiny", inference=True)
        )
        x = _input_for(session.model, batch=1, seed=2)
        row = session.predict(x[0])
        assert np.array_equal(row, session.predict_batch(x)[0])

    def test_refresh_observes_new_parameters(self):
        model = build_model("odenet", profile="tiny", inference=True)
        session = InferenceSession(model)
        x = _input_for(model, batch=2)
        before = session.predict_batch(x)
        model.fc.bias.data[...] += 1.0
        session.refresh()
        after = session.predict_batch(x)
        np.testing.assert_allclose(after - before, 1.0, atol=1e-9)


class TestSessionApi:
    def test_registry_inference_kwargs(self):
        trained = build_model("odenet", profile="tiny")
        trained.fc.bias.data[...] = 7.0
        rebuilt = build_model(
            "odenet", profile="tiny",
            pretrained_state=trained.state_dict(), inference=True,
        )
        assert not rebuilt.training
        assert np.array_equal(rebuilt.fc.bias.data, trained.fc.bias.data)

    def test_session_forces_eval_mode(self):
        model = build_model("ode_botnet", profile="tiny")
        assert model.training
        InferenceSession(model)
        assert not model.training

    def test_inference_mode_disables_grad_and_graph(self):
        assert is_grad_enabled()
        with inference_mode():
            assert not is_grad_enabled()
            a = Tensor(np.ones((2, 2)), requires_grad=True)
            out = (a * a).sum()
            assert out._ctx is None
        assert is_grad_enabled()

    def test_rejects_unsupported_model(self):
        with pytest.raises(TypeError):
            InferenceSession(42)

    def test_plans_require_eval_mode(self):
        model = build_model("odenet", profile="tiny")
        with pytest.raises(ValueError):
            PackedODENet(model)
        with pytest.raises(ValueError):
            ModulePlan(model)

    def test_forward_numpy_alias_warns_and_matches(self):
        model = build_model("ode_botnet", profile="tiny", inference=True)
        mhsa = model.mhsa
        x = np.random.default_rng(0).standard_normal(
            (2, mhsa.channels, mhsa.height, mhsa.width)
        ).astype(np.float32)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            legacy = mhsa.forward_numpy(x)
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 1  # the alias warns exactly once per call
        assert "mhsa2d_eval" in str(deprecations[0].message)
        assert np.array_equal(legacy, functional.mhsa2d_eval(mhsa, x))
        assert np.array_equal(
            legacy, mhsa(Tensor(x, _copy=False)).data
        )


class TestStats:
    def test_session_records_dispatches(self):
        session = InferenceSession(
            build_model("odenet", profile="tiny", inference=True)
        )
        x = _input_for(session.model, batch=4)
        session.predict_batch(x)
        session.predict(x[0])
        snap = session.stats.snapshot()
        assert snap["requests"] == 5
        assert snap["batches"] == 2
        assert snap["batch_histogram"] == {1: 1, 4: 1}
        assert snap["p50_ms"] > 0
        assert snap["p95_ms"] >= snap["p50_ms"]

    def test_snapshot_includes_p99(self):
        stats = SessionStats()
        for i in range(100):
            stats.record(1, 0.001 * (i + 1))
        snap = stats.snapshot()
        assert snap["p50_ms"] <= snap["p95_ms"] <= snap["p99_ms"]
        assert snap["p99_ms"] == pytest.approx(stats.latency_ms(99))

    def test_merge_aggregates_without_touching_donor(self):
        a, b = SessionStats(), SessionStats()
        a.record(4, 0.002)
        b.record(2, 0.004)
        b.record(2, 0.006)
        a.merge(b)
        snap = a.snapshot()
        assert snap["requests"] == 8
        assert snap["batches"] == 3
        assert snap["batch_histogram"] == {2: 2, 4: 1}
        assert a.latency_ms(100) == pytest.approx(6.0)
        # the donor is read-only during a merge
        assert b.snapshot()["requests"] == 4
        # merging in the opposite direction must not deadlock either
        b.merge(a)
        assert b.snapshot()["requests"] == 12

    def test_reset_and_window(self):
        stats = SessionStats(latency_window=2)
        for i in range(5):
            stats.record(2, 0.001 * (i + 1))
        assert stats.requests == 10
        assert len(stats._latencies_ms) == 2
        assert stats.latency_ms(50) == pytest.approx(4.5)
        stats.reset()
        assert stats.snapshot()["batches"] == 0
        assert np.isnan(stats.latency_ms(50))


class TestMicroBatcher:
    def test_batched_results_match_direct_predict(self):
        session = InferenceSession(
            build_model("ode_botnet", profile="tiny", inference=True)
        )
        rng = np.random.default_rng(11)
        xs = rng.standard_normal((12, 3, 32, 32)).astype(np.float32)
        direct = session.predict_batch(xs)
        session.stats.reset()  # keep only the batched-phase statistics

        with MicroBatcher(session, max_batch_size=4, max_wait_ms=200.0) as mb:
            futures = [mb.submit(x) for x in xs]
            rows = [f.result(timeout=60) for f in futures]

        # dispatched batch sizes differ from the direct batch, so allow
        # BLAS shape-dependent rounding (well below any decision change)
        for row, ref in zip(rows, direct):
            np.testing.assert_allclose(row, ref, rtol=1e-12, atol=1e-9)
        snap = session.stats.snapshot()
        assert snap["requests"] == 12
        assert snap["batches"] <= 12
        assert any(size > 1 for size in snap["batch_histogram"])

    def test_blocking_predict_and_restartable_stop(self):
        session = InferenceSession(
            build_model("odenet", profile="tiny", inference=True)
        )
        x = _input_for(session.model, batch=1, seed=9)[0]
        mb = MicroBatcher(session, max_batch_size=2, max_wait_ms=1.0)
        row = mb.predict(x)
        assert np.array_equal(row, session.predict(x))
        mb.stop()
        with pytest.raises(BatcherStopped):
            mb.submit(x)

    def test_submit_close_race_never_hangs_a_future(self):
        # Hammer submit() from several threads while close() runs: every
        # submit must either return a future that resolves, or raise the
        # typed BatcherStopped — a hung future fails the result(timeout).
        import threading

        session = InferenceSession(
            build_model("odenet", profile="tiny", inference=True)
        )
        x = _input_for(session.model, batch=1, seed=4)[0]
        expected = session.predict(x)
        for _ in range(5):  # repeat: the race window is narrow
            mb = MicroBatcher(session, max_batch_size=4, max_wait_ms=1.0)
            mb.submit(x)
            outcomes = []
            lock = threading.Lock()

            def hammer():
                for _ in range(10):
                    try:
                        fut = mb.submit(x)
                    except BatcherStopped:
                        with lock:
                            outcomes.append("stopped")
                        continue
                    row = fut.result(timeout=60)  # hangs -> test fails
                    with lock:
                        # batch-size-dependent BLAS rounding, as in
                        # test_batched_results_match_direct_predict
                        outcomes.append(
                            bool(np.allclose(row, expected,
                                             rtol=1e-12, atol=1e-9))
                        )

            threads = [threading.Thread(target=hammer) for _ in range(3)]
            for t in threads:
                t.start()
            mb.close()
            for t in threads:
                t.join()
            assert all(o is True or o == "stopped" for o in outcomes)
            # after close the typed error is immediate and consistent
            with pytest.raises(BatcherStopped):
                mb.submit(x)

    def test_worker_pool_mode(self):
        session = InferenceSession(
            build_model("odenet", profile="tiny", inference=True)
        )
        rng = np.random.default_rng(13)
        xs = rng.standard_normal((8, 3, 32, 32)).astype(np.float32)
        direct = session.predict_batch(xs)
        with MicroBatcher(
            session, max_batch_size=2, max_wait_ms=5.0, workers=2
        ) as mb:
            rows = [f.result(timeout=60) for f in [mb.submit(x) for x in xs]]
        for row, ref in zip(rows, direct):
            np.testing.assert_allclose(row, ref, rtol=1e-12, atol=1e-9)

    def test_errors_propagate_to_futures(self):
        def broken(batch):
            raise RuntimeError("backend down")

        session = InferenceSession(broken)
        assert session.backend == "callable"
        with MicroBatcher(session, max_batch_size=2, max_wait_ms=1.0) as mb:
            fut = mb.submit(np.zeros(3, dtype=np.float32))
            with pytest.raises(RuntimeError, match="backend down"):
                fut.result(timeout=60)
