"""Tests for the Module/Parameter system."""

import numpy as np
import pytest

from repro import nn
from repro.tensor import Tensor


def _mlp(rng):
    return nn.Sequential(
        nn.Linear(4, 8, rng=rng), nn.ReLU(), nn.Linear(8, 2, rng=rng)
    )


class TestRegistration:
    def test_parameters_discovered(self, rng):
        m = _mlp(rng)
        params = list(m.parameters())
        assert len(params) == 4  # 2 weights + 2 biases

    def test_named_parameters_paths(self, rng):
        m = _mlp(rng)
        names = dict(m.named_parameters())
        assert "0.weight" in names
        assert "2.bias" in names

    def test_num_parameters(self, rng):
        m = _mlp(rng)
        assert m.num_parameters() == 4 * 8 + 8 + 8 * 2 + 2

    def test_modules_iteration(self, rng):
        m = _mlp(rng)
        kinds = [type(x).__name__ for x in m.modules()]
        assert kinds.count("Linear") == 2

    def test_nested_modules(self, rng):
        class Net(nn.Module):
            def __init__(self):
                super().__init__()
                self.inner = _mlp(rng)
                self.head = nn.Linear(2, 2, rng=rng)

            def forward(self, x):
                return self.head(self.inner(x))

        net = Net()
        names = dict(net.named_parameters())
        assert "inner.0.weight" in names
        assert "head.weight" in names


class TestModes:
    def test_train_eval_propagates(self, rng):
        m = nn.Sequential(nn.Linear(2, 2, rng=rng), nn.BatchNorm2d(2))
        m.eval()
        assert all(not sub.training for sub in m.modules())
        m.train()
        assert all(sub.training for sub in m.modules())

    def test_zero_grad(self, rng):
        m = _mlp(rng)
        out = m(Tensor(rng.normal(size=(3, 4)).astype(np.float32)))
        out.sum().backward()
        assert all(p.grad is not None for p in m.parameters())
        m.zero_grad()
        assert all(p.grad is None for p in m.parameters())


class TestStateDict:
    def test_roundtrip_restores_values(self, rng):
        m1 = _mlp(rng)
        m2 = _mlp(np.random.default_rng(777))
        x = Tensor(rng.normal(size=(2, 4)).astype(np.float32))
        before = m2(x).data.copy()
        m2.load_state_dict(m1.state_dict())
        after = m2(x).data
        np.testing.assert_allclose(after, m1(x).data, rtol=1e-6)
        assert not np.allclose(before, after)

    def test_unknown_key_raises(self, rng):
        m = _mlp(rng)
        with pytest.raises(KeyError):
            m.load_state_dict({"bogus": np.zeros(3)})

    def test_shape_mismatch_raises(self, rng):
        m = _mlp(rng)
        sd = m.state_dict()
        sd["0.weight"] = np.zeros((3, 3))
        with pytest.raises(ValueError):
            m.load_state_dict(sd)

    def test_buffers_in_state_dict(self):
        bn = nn.BatchNorm2d(3)
        sd = bn.state_dict()
        assert "buffer:running_mean" in sd
        assert "buffer:running_var" in sd

    def test_buffer_roundtrip(self, rng):
        bn1 = nn.BatchNorm2d(2)
        x = Tensor(rng.normal(size=(4, 2, 3, 3)).astype(np.float32))
        bn1(x)  # updates running stats
        bn2 = nn.BatchNorm2d(2)
        bn2.load_state_dict(bn1.state_dict())
        np.testing.assert_allclose(bn2.running_mean, bn1.running_mean)


class TestContainers:
    def test_sequential_indexing(self, rng):
        m = _mlp(rng)
        assert isinstance(m[0], nn.Linear)
        assert len(m) == 3

    def test_module_list(self, rng):
        ml = nn.ModuleList([nn.Linear(2, 2, rng=rng) for _ in range(3)])
        assert len(ml) == 3
        assert len(list(ml[1].parameters())) == 2
        assert len(dict(nn.Sequential(*ml).named_parameters())) == 6
