"""Execute every fenced ``python`` block in the documentation, and check links.

The docs are part of the API surface: README.md and every guide under
``docs/`` promise working code, so each file's ``python`` blocks are
executed *cumulatively* (later blocks build on earlier ones, like a
reader following the page top to bottom). A block that is deliberately
illustrative — pseudo-code, a fragment with free variables — opts out
with an HTML comment on the line above its fence:

    <!-- docs-snippet: skip -->
    ```python
    p.data -= self.lr * g   # not runnable on its own
    ```

A second test resolves every relative markdown link in the user-facing
docs so ``docs/INDEX.md`` (and everything it points at) cannot rot.
"""

import os
import re

import pytest

REPO = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))

SKIP_MARKER = "<!-- docs-snippet: skip -->"
FENCE = re.compile(r"```python\n(.*?)```", re.DOTALL)

# Files whose python blocks must run.  Globbed so a new guide is picked
# up automatically; the floor counts catch a regex/refactor silently
# extracting nothing from a doc known to carry examples.
SNIPPET_FILES = sorted(
    ["README.md"]
    + [
        os.path.join("docs", name)
        for name in os.listdir(os.path.join(REPO, "docs"))
        if name.endswith(".md")
    ]
)
MIN_BLOCKS = {
    "README.md": 2,
    os.path.join("docs", "COMPILE.md"): 3,
    os.path.join("docs", "TUTORIAL.md"): 7,
    os.path.join("docs", "OBSERVABILITY.md"): 4,
    os.path.join("docs", "SERVING.md"): 1,
    os.path.join("docs", "CLUSTER.md"): 4,
    os.path.join("docs", "ADAPTATION.md"): 5,
}

# User-facing markdown whose relative links must resolve.  Work-log /
# provenance files (CHANGES.md, ISSUE.md, PAPER*.md, SNIPPETS.md) are
# exempt: they cite external material, not this tree.
LINKED_FILES = [
    "README.md",
    "DESIGN.md",
    "EXPERIMENTS.md",
    "CONTRIBUTING.md",
    "ROADMAP.md",
    os.path.join("benchmarks", "README.md"),
] + [p for p in SNIPPET_FILES if p != "README.md"]

LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def python_blocks(relpath):
    """``(line_number, source)`` for each runnable python fence in the file."""
    text = open(os.path.join(REPO, relpath)).read()
    blocks = []
    for match in FENCE.finditer(text):
        head = text[: match.start()]
        preceding = head.rstrip().rsplit("\n", 1)[-1].strip()
        if preceding == SKIP_MARKER:
            continue
        blocks.append((head.count("\n") + 2, match.group(1)))
    return blocks


@pytest.mark.parametrize("relpath", SNIPPET_FILES, ids=lambda p: p.replace(os.sep, "/"))
def test_doc_python_blocks_run(relpath):
    blocks = python_blocks(relpath)
    floor = MIN_BLOCKS.get(relpath, 0)
    assert len(blocks) >= floor, (
        f"{relpath}: expected at least {floor} runnable python blocks, "
        f"found {len(blocks)} — was an example deleted or mis-fenced?"
    )
    namespace = {}
    for line, source in blocks:
        code = compile(source, f"{relpath} block at line {line}", "exec")
        exec(code, namespace)


@pytest.mark.parametrize("relpath", LINKED_FILES, ids=lambda p: p.replace(os.sep, "/"))
def test_doc_relative_links_resolve(relpath):
    text = open(os.path.join(REPO, relpath)).read()
    base = os.path.dirname(os.path.join(REPO, relpath))
    broken = []
    for target in LINK.findall(text):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        path = os.path.normpath(os.path.join(base, target.split("#", 1)[0]))
        if not os.path.exists(path):
            broken.append(target)
    assert not broken, f"{relpath}: broken relative links: {broken}"


def test_hls_loopnest_validation():
    from repro.fpga import LoopNest

    with pytest.raises(ValueError):
        LoopNest(trip=10, unroll=0)
    with pytest.raises(ValueError):
        LoopNest(trip=10, ii=0)
