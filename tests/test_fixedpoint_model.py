"""Tests for full-model fixed-point inference (quantized layers + executor)."""

import numpy as np
import pytest

from repro import nn
from repro.fixedpoint import (
    QFormat,
    QuantizedODENetExecutor,
    fixed_bn_apply,
    fixed_conv2d,
    fixed_euler_update,
    fixed_global_avgpool,
    fixed_linear,
    fixed_maxpool2d,
    fold_batchnorm,
    full_model_quant_accuracy,
)
from repro.models import build_model
from repro.tensor import Tensor, no_grad

F = QFormat(32, 16)
P = QFormat(24, 8)


class TestFixedConv:
    def test_matches_float_conv(self, rng):
        x = rng.normal(size=(2, 3, 6, 6))
        w = rng.normal(size=(4, 3, 3, 3))
        ref = Tensor(x, dtype=np.float64).conv2d(
            Tensor(w, dtype=np.float64), stride=(2, 2), padding=(1, 1)
        ).data
        out = F.dequantize(
            fixed_conv2d(F.quantize(x), F, P.quantize(w), P, F,
                         stride=(2, 2), padding=(1, 1))
        )
        np.testing.assert_allclose(out, ref, atol=1e-2)

    def test_grouped(self, rng):
        x = rng.normal(size=(1, 4, 5, 5))
        w = rng.normal(size=(4, 1, 3, 3))
        ref = Tensor(x, dtype=np.float64).conv2d(
            Tensor(w, dtype=np.float64), padding=(1, 1), groups=4
        ).data
        out = F.dequantize(
            fixed_conv2d(F.quantize(x), F, P.quantize(w), P, F,
                         padding=(1, 1), groups=4)
        )
        np.testing.assert_allclose(out, ref, atol=1e-2)

    def test_bias(self, rng):
        x = rng.normal(size=(1, 2, 3, 3))
        w = rng.normal(size=(3, 2, 1, 1))
        b = rng.normal(size=(3,))
        ref = (
            Tensor(x, dtype=np.float64).conv2d(Tensor(w, dtype=np.float64)).data
            + b.reshape(1, -1, 1, 1)
        )
        out = F.dequantize(
            fixed_conv2d(F.quantize(x), F, P.quantize(w), P, F,
                         bias_raw=P.quantize(b), bias_fmt=P)
        )
        np.testing.assert_allclose(out, ref, atol=1e-2)


class TestFixedBN:
    def test_fold_and_apply_matches_eval_bn(self, rng):
        bn = nn.BatchNorm2d(4)
        # give the BN non-trivial trained state
        bn(Tensor((rng.normal(size=(16, 4, 5, 5)) * 2 + 1).astype(np.float32)))
        bn.weight.data[:] = rng.uniform(0.5, 1.5, size=4)
        bn.bias.data[:] = rng.normal(size=4)
        bn.eval()
        x = rng.normal(size=(2, 4, 3, 3))
        with no_grad():
            ref = bn(Tensor(x, dtype=np.float64)).data
        scale, shift = fold_batchnorm(bn, P)
        out = F.dequantize(fixed_bn_apply(F.quantize(x), F, scale, shift, P, F))
        np.testing.assert_allclose(out, ref, atol=2e-2)


class TestFixedMisc:
    def test_linear_matches(self, rng):
        x = rng.normal(size=(3, 5))
        w = rng.normal(size=(4, 5))
        b = rng.normal(size=(4,))
        ref = x @ w.T + b
        out = F.dequantize(
            fixed_linear(F.quantize(x), F, P.quantize(w), P, F,
                         bias_raw=P.quantize(b), bias_fmt=P)
        )
        np.testing.assert_allclose(out, ref, atol=1e-2)

    def test_maxpool_exact(self, rng):
        x = rng.normal(size=(1, 2, 4, 4))
        raw = F.quantize(x)
        out = fixed_maxpool2d(raw, (2, 2))
        ref = raw.reshape(1, 2, 2, 2, 2, 2).max(axis=(3, 5))
        np.testing.assert_array_equal(out, ref)

    def test_maxpool_padding_uses_minus_inf(self):
        raw = F.quantize(-np.ones((1, 1, 2, 2)))
        out = fixed_maxpool2d(raw, (2, 2), stride=(2, 2), padding=(1, 1))
        assert (out <= 0).all()

    def test_global_avgpool(self, rng):
        x = rng.normal(size=(2, 3, 4, 4))
        out = F.dequantize(fixed_global_avgpool(F.quantize(x), F))
        np.testing.assert_allclose(out, x.mean(axis=(2, 3)), atol=1e-4)

    def test_euler_update(self, rng):
        z = rng.normal(size=(4,))
        f = rng.normal(size=(4,))
        out = F.dequantize(
            fixed_euler_update(F.quantize(z), F.quantize(f), F, 0.125, P)
        )
        np.testing.assert_allclose(out, z + 0.125 * f, atol=1e-3)


class TestExecutor:
    @pytest.fixture(scope="class")
    def trained(self):
        from repro.experiments.quantization import trained_proposed_model

        return trained_proposed_model(profile="tiny", epochs=6,
                                      n_train_per_class=30)

    def _eval_batch(self, n_per_class=10):
        from repro.data import DataLoader, SynthSTL

        test = SynthSTL("test", size=32, n_per_class=n_per_class, seed=0)
        return next(iter(DataLoader(test, batch_size=len(test))))

    def test_wide_format_matches_float_logits(self, trained):
        images, labels = self._eval_batch()
        with no_grad():
            ref = trained(Tensor(images)).data
        out = QuantizedODENetExecutor(trained, F, P).run(images)
        # logits agree to well under any decision margin
        assert np.abs(out - ref).max() < 0.08
        assert (np.argmax(out, axis=-1) == np.argmax(ref, axis=-1)).all()

    def test_rejects_training_mode(self, trained):
        trained.train()
        try:
            with pytest.raises(ValueError):
                QuantizedODENetExecutor(trained, F, P)
        finally:
            trained.eval()

    def test_rejects_non_odenet(self, rng):
        model = build_model("resnet50", profile="tiny").eval()
        with pytest.raises(TypeError):
            QuantizedODENetExecutor(model, F, P)

    def test_works_on_plain_odenet(self, rng):
        model = build_model("odenet", profile="tiny").eval()
        images = rng.normal(size=(2, 3, 32, 32)).astype(np.float32)
        with no_grad():
            ref = model(Tensor(images)).data
        out = QuantizedODENetExecutor(model, F, P).run(images)
        assert np.abs(out - ref).max() < 0.05

    def test_accuracy_degrades_at_narrow_formats(self, trained):
        """The full-network Table VIII shape: flat then collapse."""
        images, labels = self._eval_batch(n_per_class=15)
        rows = full_model_quant_accuracy(
            trained, images, labels,
            ("32(16)-24(8)", "16(8)-12(4)", "6(3)-6(2)", "4(2)-4(2)"),
        )
        by = {r["format"]: r["accuracy"] for r in rows}
        assert by["16(8)-12(4)"] >= by["32(16)-24(8)"] - 5
        assert by["4(2)-4(2)"] < by["32(16)-24(8)"] - 15

    def test_rejects_non_euler_solver(self, trained):
        from repro.ode import get_solver

        old = trained.block1.solver
        trained.block1.solver = get_solver("rk4")
        try:
            ex = QuantizedODENetExecutor(trained, F, P)
            images, _ = self._eval_batch(n_per_class=1)
            with pytest.raises(NotImplementedError):
                ex.run(images)
        finally:
            trained.block1.solver = old
