"""Tests for Q-format arithmetic: quantisation, saturation, kernels."""

import numpy as np
import pytest

from repro.fixedpoint import (
    PAPER_FORMATS,
    QFormat,
    QuantizedMHSA2d,
    fixed_add,
    fixed_matmul,
    fixed_mul,
    fixed_relu,
    fixed_scale,
    parse_format_pair,
    requantize,
)
from repro.nn import functional


class TestQFormat:
    def test_basic_properties(self):
        f = QFormat(32, 16)
        assert f.frac_bits == 16
        assert f.scale == 2 ** -16
        assert f.raw_max == 2 ** 31 - 1
        assert f.value_max == pytest.approx(2 ** 15, rel=1e-6)

    def test_parse_roundtrip(self):
        f = QFormat.parse("24(8)")
        assert (f.total_bits, f.int_bits) == (24, 8)
        assert str(f) == "24(8)"

    def test_parse_pair(self):
        feat, par = parse_format_pair("32(16)-24(8)")
        assert feat == QFormat(32, 16)
        assert par == QFormat(24, 8)

    def test_paper_formats_all_parse(self):
        for pair in PAPER_FORMATS:
            feat, par = parse_format_pair(pair)
            assert feat.total_bits > par.total_bits  # params are narrower

    def test_invalid_formats_raise(self):
        with pytest.raises(ValueError):
            QFormat(1, 1)
        with pytest.raises(ValueError):
            QFormat(16, 20)
        with pytest.raises(ValueError):
            QFormat(16, 0)

    def test_quantize_exact_values(self):
        f = QFormat(16, 8)
        assert f.quantize(np.array(1.0)) == 256
        assert f.quantize(np.array(-1.0)) == -256
        assert f.quantize(np.array(0.5)) == 128

    def test_round_half_even(self):
        f = QFormat(16, 8)  # LSB = 1/256
        # 0.001953125 = 0.5 LSB -> rounds to even (0)
        assert f.quantize(np.array(0.5 / 256)) == 0
        assert f.quantize(np.array(1.5 / 256)) == 2

    def test_saturation(self):
        f = QFormat(8, 4)  # range [-8, 8)
        assert f.quantize(np.array(100.0)) == f.raw_max
        assert f.quantize(np.array(-100.0)) == f.raw_min

    def test_roundtrip_error_bounded_by_half_lsb(self, rng):
        f = QFormat(20, 10)
        x = rng.uniform(-100, 100, size=1000)
        err = np.abs(f.roundtrip(x) - x)
        assert err.max() <= f.scale / 2 + 1e-12

    def test_narrower_format_larger_error(self, rng):
        x = rng.uniform(-1, 1, size=500)
        errs = []
        for fmt in (QFormat(32, 16), QFormat(20, 10), QFormat(12, 4)):
            errs.append(np.abs(fmt.roundtrip(x) - x).max())
        assert errs[0] < errs[1] < errs[2]


class TestFixedOps:
    F = QFormat(32, 16)
    P = QFormat(24, 8)

    def test_matmul_accuracy(self, rng):
        a = rng.normal(size=(6, 7))
        b = rng.normal(size=(7, 5))
        res = self.F.dequantize(
            fixed_matmul(self.F.quantize(a), self.F, self.P.quantize(b), self.P, self.F)
        )
        np.testing.assert_allclose(res, a @ b, atol=1e-3)

    def test_matmul_exact_for_representable_inputs(self):
        """Integers are exactly representable; products must be exact."""
        a = np.array([[2.0, 3.0]])
        b = np.array([[4.0], [5.0]])
        res = fixed_matmul(
            self.F.quantize(a), self.F, self.F.quantize(b), self.F, self.F
        )
        assert self.F.dequantize(res)[0, 0] == 23.0

    def test_matmul_batched(self, rng):
        a = rng.normal(size=(2, 3, 4))
        b = rng.normal(size=(2, 4, 3))
        res = self.F.dequantize(
            fixed_matmul(self.F.quantize(a), self.F, self.F.quantize(b), self.F, self.F)
        )
        np.testing.assert_allclose(res, a @ b, atol=1e-3)

    def test_add_format_alignment(self):
        a = self.F.quantize(np.array(1.25))
        b = self.P.quantize(np.array(2.5))
        out = fixed_add(a, self.F, b, self.P, self.F)
        assert self.F.dequantize(out) == 3.75

    def test_add_saturates(self):
        small = QFormat(8, 4)
        a = small.quantize(np.array(7.0))
        out = fixed_add(a, small, a, small, small)
        assert small.dequantize(out) == pytest.approx(small.value_max, rel=1e-3)

    def test_mul(self, rng):
        a, b = rng.normal(size=(5,)), rng.normal(size=(5,))
        res = self.F.dequantize(
            fixed_mul(self.F.quantize(a), self.F, self.F.quantize(b), self.F, self.F)
        )
        np.testing.assert_allclose(res, a * b, atol=1e-4)

    def test_relu_preserves_format(self):
        raw = np.array([-100, 0, 100], dtype=np.int64)
        np.testing.assert_array_equal(fixed_relu(raw), [0, 0, 100])

    def test_scale_by_constant(self):
        x = self.F.quantize(np.array([4.0]))
        out = fixed_scale(x, self.F, 0.5, self.P, self.F)
        assert self.F.dequantize(out)[0] == pytest.approx(2.0, rel=1e-4)

    def test_requantize_widening_is_lossless(self, rng):
        narrow = QFormat(16, 8)
        wide = QFormat(32, 16)
        x = rng.uniform(-10, 10, size=100)
        raw = narrow.quantize(x)
        back = requantize(requantize(raw, narrow, wide), wide, narrow)
        np.testing.assert_array_equal(back, raw)

    def test_requantize_narrowing_rounds(self):
        wide = QFormat(32, 16)
        narrow = QFormat(16, 8)
        raw = wide.quantize(np.array(1.0 + 2 ** -12))
        out = requantize(raw, wide, narrow)
        assert narrow.dequantize(out) == pytest.approx(1.0, abs=narrow.scale)


class TestQuantizedMHSA:
    def _mhsa(self, rng, **kw):
        from repro import nn

        defaults = dict(
            channels=8, height=3, width=3, heads=2,
            attention_activation="relu", out_layernorm=True,
        )
        defaults.update(kw)
        return nn.MHSA2d(rng=rng, **defaults)

    def test_wide_format_close_to_float(self, rng):
        m = self._mhsa(rng)
        x = rng.normal(size=(2, 8, 3, 3)).astype(np.float32)
        q = QuantizedMHSA2d(m, QFormat(32, 16), QFormat(24, 8))
        np.testing.assert_allclose(q(x), functional.mhsa2d_eval(m, x), atol=1e-3)

    def test_error_monotone_in_format_width(self, rng):
        """Figs 9-10: narrower formats give strictly larger error."""
        m = self._mhsa(rng)
        x = rng.normal(size=(2, 8, 3, 3)).astype(np.float32)
        ref = functional.mhsa2d_eval(m, x)
        errs = []
        for pair in PAPER_FORMATS:
            f, p = parse_format_pair(pair)
            errs.append(np.abs(QuantizedMHSA2d(m, f, p)(x) - ref).max())
        assert all(a <= b + 1e-9 for a, b in zip(errs, errs[1:]))
        assert errs[-1] > errs[0]

    def test_output_exactly_representable(self, rng):
        m = self._mhsa(rng)
        x = rng.normal(size=(1, 8, 3, 3)).astype(np.float32)
        f = QFormat(20, 10)
        out = QuantizedMHSA2d(m, f, QFormat(16, 4))(x)
        # every output value must be a multiple of the feature LSB
        scaled = out.astype(np.float64) / f.scale
        np.testing.assert_allclose(scaled, np.round(scaled), atol=1e-6)

    def test_softmax_variant_supported(self, rng):
        m = self._mhsa(rng, attention_activation="softmax", out_layernorm=False)
        x = rng.normal(size=(1, 8, 3, 3)).astype(np.float32)
        q = QuantizedMHSA2d(m, QFormat(32, 16), QFormat(24, 8))
        np.testing.assert_allclose(q(x), functional.mhsa2d_eval(m, x), atol=1e-3)

    def test_absolute_pos_enc_rejected(self, rng):
        m = self._mhsa(rng, pos_enc="absolute")
        with pytest.raises(NotImplementedError):
            QuantizedMHSA2d(m, QFormat(32, 16), QFormat(24, 8))

    def test_model_level_context_manager(self, rng):
        from repro.fixedpoint.quantized_mhsa import use_quantized_mhsa
        from repro.models import build_model
        from repro.tensor import Tensor, no_grad

        model = build_model("ode_botnet", profile="tiny").eval()
        x = Tensor(rng.normal(size=(1, 3, 32, 32)).astype(np.float32))
        with no_grad():
            ref = model(x).data
        with use_quantized_mhsa(model, QFormat(32, 16), QFormat(24, 8)):
            with no_grad():
                quant = model(x).data
        with no_grad():
            restored = model(x).data
        assert np.abs(ref - quant).max() < 0.1  # close but quantised
        np.testing.assert_array_equal(ref, restored)  # forward restored

    def test_context_manager_requires_mhsa(self, rng):
        from repro.fixedpoint.quantized_mhsa import use_quantized_mhsa
        from repro.models import build_model

        model = build_model("odenet", profile="tiny")
        with pytest.raises(ValueError):
            with use_quantized_mhsa(model, QFormat(32, 16), QFormat(24, 8)):
                pass


class TestStochasticRounding:
    def test_requires_rng(self):
        with pytest.raises(ValueError):
            QFormat(16, 8).quantize(np.array(0.3), rounding="stochastic")

    def test_unknown_mode_raises(self):
        with pytest.raises(ValueError):
            QFormat(16, 8).quantize(np.array(0.3), rounding="ceil")

    def test_exact_values_unchanged(self):
        f = QFormat(16, 8)
        rng = np.random.default_rng(0)
        x = np.array([1.0, -2.5, 0.25])  # exactly representable
        raw = f.quantize(x, rounding="stochastic", rng=rng)
        np.testing.assert_array_equal(f.dequantize(raw), x)

    def test_unbiased_in_expectation(self):
        """The whole point: E[stochastic_round(x)] == x, so sub-LSB
        signals survive averaging (nearest rounding kills them)."""
        f = QFormat(16, 8)
        x = np.full(200_000, 0.3 / 256)  # 0.3 LSB, rounds to 0 nearest
        nearest = f.dequantize(f.quantize(x)).mean()
        assert nearest == 0.0
        rng = np.random.default_rng(1)
        stochastic = f.dequantize(
            f.quantize(x, rounding="stochastic", rng=rng)
        ).mean()
        assert stochastic == pytest.approx(0.3 / 256, rel=0.05)

    def test_saturation_still_applies(self):
        f = QFormat(8, 4)
        rng = np.random.default_rng(0)
        raw = f.quantize(np.array([1e6]), rounding="stochastic", rng=rng)
        assert raw[0] == f.raw_max
