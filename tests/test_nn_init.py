"""Tests for weight initialisers."""

import numpy as np
import pytest

from repro.nn import init


class TestFanComputation:
    def test_linear_fans(self):
        fan_in, fan_out = init._fan_in_out((8, 4))
        assert (fan_in, fan_out) == (4, 8)

    def test_conv_fans(self):
        fan_in, fan_out = init._fan_in_out((16, 3, 5, 5))
        assert fan_in == 3 * 25
        assert fan_out == 16 * 25


class TestDistributions:
    def test_kaiming_normal_std(self):
        rng = np.random.default_rng(0)
        w = init.kaiming_normal(rng, (2000, 100))
        expected_std = np.sqrt(2.0 / 100)
        assert w.std() == pytest.approx(expected_std, rel=0.05)
        assert abs(w.mean()) < 0.01

    def test_kaiming_uniform_bound(self):
        rng = np.random.default_rng(0)
        w = init.kaiming_uniform(rng, (500, 50))
        bound = np.sqrt(2.0) * np.sqrt(3.0 / 50)
        assert np.abs(w).max() <= bound
        assert np.abs(w).max() > 0.9 * bound  # actually fills the range

    def test_xavier_uniform_bound(self):
        rng = np.random.default_rng(0)
        w = init.xavier_uniform(rng, (100, 100))
        bound = np.sqrt(6.0 / 200)
        assert np.abs(w).max() <= bound

    def test_xavier_normal_std(self):
        rng = np.random.default_rng(0)
        w = init.xavier_normal(rng, (1000, 200))
        assert w.std() == pytest.approx(np.sqrt(2.0 / 1200), rel=0.05)

    def test_normal_std_param(self):
        rng = np.random.default_rng(0)
        w = init.normal(rng, (10000,), std=0.5)
        assert w.std() == pytest.approx(0.5, rel=0.05)

    def test_uniform_bias_bound(self):
        rng = np.random.default_rng(0)
        b = init.uniform_bias(rng, (1000,), fan_in=16)
        assert np.abs(b).max() <= 0.25

    def test_uniform_bias_zero_fan(self):
        rng = np.random.default_rng(0)
        b = init.uniform_bias(rng, (5,), fan_in=0)
        np.testing.assert_array_equal(b, np.zeros(5))

    def test_zeros_ones(self):
        np.testing.assert_array_equal(init.zeros((2, 2)), np.zeros((2, 2)))
        np.testing.assert_array_equal(init.ones((3,)), np.ones(3))


class TestDeterminism:
    @pytest.mark.parametrize(
        "fn", [init.kaiming_normal, init.kaiming_uniform,
               init.xavier_uniform, init.xavier_normal]
    )
    def test_same_seed_same_weights(self, fn):
        a = fn(np.random.default_rng(7), (8, 8))
        b = fn(np.random.default_rng(7), (8, 8))
        np.testing.assert_array_equal(a, b)

    def test_rng_state_advances(self):
        rng = np.random.default_rng(0)
        a = init.kaiming_normal(rng, (4, 4))
        b = init.kaiming_normal(rng, (4, 4))
        assert not np.allclose(a, b)


class TestTrainingSignalPreservation:
    def test_kaiming_preserves_activation_scale(self, rng):
        """He init should keep post-ReLU variance roughly constant
        through a deep stack — the property it is designed for."""
        x = rng.normal(size=(256, 128))
        h = x
        for i in range(6):
            w = init.kaiming_normal(np.random.default_rng(i), (128, 128))
            h = np.maximum(h @ w.T, 0)
        # variance neither explodes nor vanishes
        ratio = h.var() / x.var()
        assert 0.05 < ratio < 20
