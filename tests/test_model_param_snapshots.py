"""Exact parameter-count snapshots — regression anchors.

Any architecture change that silently alters a model's parameter count
breaks the Table IV reproduction; these snapshots pin the current
values exactly (update them deliberately when the architecture changes,
and re-check against the paper in EXPERIMENTS.md).
"""

import pytest

from repro.models import build_model

PAPER_SNAPSHOT = {
    "resnet50": 23_528_522,
    "botnet50": 18_822_218,
    "odenet": 565_760,
    "ode_botnet": 475_246,
    "vit_base": 85_683_466,
    "alternet50": 21_451_850,
}

TINY_SNAPSHOT = {
    "resnet50": 130_962,
    "botnet50": 106_642,
    "odenet": 11_640,
    "ode_botnet": 10_822,
}


@pytest.mark.parametrize("name,expected", sorted(PAPER_SNAPSHOT.items()))
def test_paper_profile_param_snapshot(name, expected):
    assert build_model(name, profile="paper").num_parameters() == expected


@pytest.mark.parametrize("name,expected", sorted(TINY_SNAPSHOT.items()))
def test_tiny_profile_param_snapshot(name, expected):
    assert build_model(name, profile="tiny").num_parameters() == expected


def test_paper_reduction_headline():
    """The number quoted throughout README/EXPERIMENTS: 97.5%."""
    reduction = 1 - PAPER_SNAPSHOT["ode_botnet"] / PAPER_SNAPSHOT["botnet50"]
    assert reduction == pytest.approx(0.9748, abs=0.0005)
