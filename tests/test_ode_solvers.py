"""Tests for ODE solvers: correctness, convergence order, adaptivity."""

import numpy as np
import pytest

from repro import ode
from repro.tensor import Tensor


def linear_decay(t, z):
    return -z


def exact_decay(z0, t):
    return z0 * np.exp(-t)


class TestSolverRegistry:
    def test_available(self):
        names = ode.available_solvers()
        for expected in ("euler", "heun", "midpoint", "rk4", "dopri5"):
            assert expected in names

    def test_get_unknown_raises(self):
        with pytest.raises(ValueError):
            ode.get_solver("verlet")

    def test_kwargs_forwarded(self):
        d5 = ode.get_solver("dopri5", rtol=1e-7)
        assert d5.rtol == 1e-7


class TestFixedGridAccuracy:
    @pytest.mark.parametrize(
        "method,steps,tol",
        [("euler", 100, 5e-3), ("midpoint", 20, 5e-4), ("heun", 20, 5e-4),
         ("rk4", 5, 1e-4)],
    )
    def test_linear_decay(self, method, steps, tol):
        z0 = Tensor(np.ones((2, 3)), dtype=np.float64)
        z1 = ode.odeint(linear_decay, z0, steps=steps, method=method)
        np.testing.assert_allclose(z1.data, np.exp(-1.0), atol=tol)

    def test_invalid_steps_raises(self):
        with pytest.raises(ValueError):
            ode.odeint(linear_decay, Tensor(np.ones(1)), steps=0)

    @pytest.mark.parametrize("method,order", [("euler", 1), ("heun", 2), ("rk4", 4)])
    def test_convergence_order(self, method, order):
        """Halving step size should divide the error by ~2^order."""
        z0 = Tensor(np.ones(1), dtype=np.float64)
        errors = []
        for steps in (8, 16):
            z1 = ode.odeint(linear_decay, z0, steps=steps, method=method)
            errors.append(abs(z1.data[0] - np.exp(-1.0)))
        observed = np.log2(errors[0] / errors[1])
        assert observed == pytest.approx(order, abs=0.4)

    def test_time_dependent_dynamics(self):
        """dz/dt = t has exact solution z(1) = z0 + 1/2."""
        z0 = Tensor(np.zeros(1), dtype=np.float64)
        z1 = ode.odeint(lambda t, z: z * 0 + t, z0, steps=50, method="heun")
        assert z1.data[0] == pytest.approx(0.5, abs=1e-6)

    def test_euler_equals_shared_resblock_iteration(self):
        """Eq. (14): Euler with C steps == C weight-shared residual
        updates z <- z + h f(z)."""
        w = 0.3
        f = lambda t, z: z * w
        z0 = Tensor(np.array([1.0]), dtype=np.float64)
        c = 7
        z_solver = ode.odeint(f, z0, steps=c, method="euler")
        z_manual = 1.0
        for _ in range(c):
            z_manual = z_manual + (1.0 / c) * (w * z_manual)
        assert z_solver.data[0] == pytest.approx(z_manual, rel=1e-12)


class TestDopri5:
    def test_high_accuracy(self):
        d5 = ode.Dopri5(rtol=1e-8, atol=1e-10)
        z1 = d5.integrate(linear_decay, Tensor(np.ones(4), dtype=np.float64))
        np.testing.assert_allclose(z1.data, np.exp(-1.0), atol=1e-7)

    def test_stats_populated(self):
        d5 = ode.Dopri5()
        d5.integrate(linear_decay, Tensor(np.ones(1), dtype=np.float64))
        assert d5.stats["accepted"] > 0
        assert d5.stats["nfe"] == 7 * (d5.stats["accepted"] + d5.stats["rejected"])

    def test_stiffer_problem_takes_more_steps(self):
        d5a = ode.Dopri5(rtol=1e-3)
        d5a.integrate(lambda t, z: -z, Tensor(np.ones(1), dtype=np.float64))
        gentle = d5a.stats["accepted"]
        d5b = ode.Dopri5(rtol=1e-3)
        d5b.integrate(lambda t, z: -50.0 * z, Tensor(np.ones(1), dtype=np.float64))
        stiff = d5b.stats["accepted"]
        assert stiff > gentle

    def test_max_steps_guard(self):
        d5 = ode.Dopri5(rtol=1e-14, atol=1e-16, max_steps=3)
        with pytest.raises(RuntimeError):
            d5.integrate(lambda t, z: -100 * z, Tensor(np.ones(1), dtype=np.float64))

    def test_gradient_through_adaptive_solver(self):
        z0 = Tensor(np.array([2.0]), requires_grad=True, dtype=np.float64)
        d5 = ode.Dopri5(rtol=1e-6, atol=1e-8)
        z1 = d5.integrate(linear_decay, z0)
        z1.sum().backward()
        # d z(1) / d z0 = e^-1 for linear decay
        assert z0.grad[0] == pytest.approx(np.exp(-1.0), rel=1e-4)


class TestGradientsThroughSolvers:
    @pytest.mark.parametrize("method", ["euler", "heun", "midpoint", "rk4"])
    def test_decay_sensitivity(self, method):
        z0 = Tensor(np.array([1.5]), requires_grad=True, dtype=np.float64)
        z1 = ode.odeint(linear_decay, z0, steps=40, method=method)
        z1.sum().backward()
        # Euler's gradient is the exact discrete derivative (1 - h)^C,
        # which deviates from e^-1 by ~1.3% at 40 steps.
        assert z0.grad[0] == pytest.approx(np.exp(-1.0), rel=2e-2)

    def test_euler_gradient_is_exact_discrete_derivative(self):
        """Discretize-then-optimize: the Euler gradient equals the
        derivative of the unrolled computation, (1 - h)^C exactly."""
        steps = 40
        z0 = Tensor(np.array([1.5]), requires_grad=True, dtype=np.float64)
        ode.odeint(linear_decay, z0, steps=steps, method="euler").sum().backward()
        assert z0.grad[0] == pytest.approx((1 - 1 / steps) ** steps, rel=1e-12)

    def test_parameter_gradient_matches_analytic(self):
        """For dz/dt = -a z: dz(1)/da = -z0 e^{-a}."""
        a = Tensor(np.array([0.7]), requires_grad=True, dtype=np.float64)
        z0 = Tensor(np.array([1.0]), dtype=np.float64)
        z1 = ode.odeint(lambda t, z: -(a * z), z0, steps=200, method="rk4")
        z1.sum().backward()
        assert a.grad[0] == pytest.approx(-np.exp(-0.7), rel=1e-3)
