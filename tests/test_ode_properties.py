"""Property-based tests (hypothesis) on ODE solver invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import ode
from repro.tensor import Tensor

FIXED = ("euler", "midpoint", "heun", "rk4")


@settings(max_examples=20, deadline=None)
@given(st.sampled_from(FIXED), st.floats(-2, 2, allow_nan=False),
       st.integers(1, 30))
def test_linearity_in_initial_condition(method, scale, steps):
    """For the linear ODE z' = -z, the solution map is linear: solving
    from a*z0 equals a times solving from z0 — for every explicit RK
    method exactly (they apply a fixed linear update matrix)."""
    z0 = Tensor(np.array([1.0, -0.5]), dtype=np.float64)
    base = ode.odeint(lambda t, z: -z, z0, steps=steps, method=method).data
    scaled = ode.odeint(
        lambda t, z: -z, Tensor(scale * z0.data, dtype=np.float64),
        steps=steps, method=method,
    ).data
    np.testing.assert_allclose(scaled, scale * base, rtol=1e-10, atol=1e-12)


@settings(max_examples=20, deadline=None)
@given(st.sampled_from(FIXED), st.integers(1, 20))
def test_zero_dynamics_identity(method, steps):
    """z' = 0 must return the initial state exactly."""
    rng = np.random.default_rng(steps)
    z0 = Tensor(rng.normal(size=(3, 2)), dtype=np.float64)
    out = ode.odeint(lambda t, z: z * 0.0, z0, steps=steps, method=method)
    np.testing.assert_array_equal(out.data, z0.data)


@settings(max_examples=20, deadline=None)
@given(st.sampled_from(FIXED), st.integers(2, 20))
def test_time_interval_composition(method, steps):
    """Integrating [0, 1] in one go equals integrating [0, 0.5] then
    [0.5, 1] with half the steps each (fixed-grid methods are exactly
    composable on matching grids)."""
    f = lambda t, z: -0.7 * z + t
    z0 = Tensor(np.array([1.3]), dtype=np.float64)
    full = ode.odeint(f, z0, t0=0.0, t1=1.0, steps=2 * steps, method=method)
    half = ode.odeint(f, z0, t0=0.0, t1=0.5, steps=steps, method=method)
    full2 = ode.odeint(f, half, t0=0.5, t1=1.0, steps=steps, method=method)
    np.testing.assert_allclose(full2.data, full.data, rtol=1e-12)


@settings(max_examples=10, deadline=None)
@given(st.floats(0.1, 3.0, allow_nan=False))
def test_adaptive_solvers_agree(rate):
    """Dopri5 and Bosh3 must agree on smooth problems within tolerance."""
    f = lambda t, z: -rate * z
    z0 = Tensor(np.ones(1), dtype=np.float64)
    d = ode.Dopri5(rtol=1e-8, atol=1e-10).integrate(f, z0)
    b = ode.Bosh3(rtol=1e-8, atol=1e-10).integrate(f, z0)
    np.testing.assert_allclose(d.data, b.data, rtol=1e-6)
    np.testing.assert_allclose(d.data, np.exp(-rate), rtol=1e-6)


@settings(max_examples=15, deadline=None)
@given(st.integers(1, 50))
def test_euler_matches_closed_form_recurrence(steps):
    """Euler on z' = -z is exactly z0 (1 - 1/C)^C."""
    z0 = Tensor(np.array([2.0]), dtype=np.float64)
    out = ode.odeint(lambda t, z: -z, z0, steps=steps, method="euler")
    assert out.data[0] == pytest.approx(2.0 * (1 - 1 / steps) ** steps, rel=1e-12)
