"""Tests for losses, optimizers, schedulers, metrics and the Trainer."""

import numpy as np
import pytest

from repro import nn
from repro.data import ArrayDataset, DataLoader
from repro.tensor import Tensor
from repro.train import (
    SGD,
    ConstantLR,
    CosineAnnealingWarmRestarts,
    CrossEntropyLoss,
    StepLR,
    Trainer,
    accuracy,
    confusion_matrix,
    topk_accuracy,
)


class TestCrossEntropy:
    def test_matches_manual(self, rng):
        logits = rng.normal(size=(4, 5))
        labels = np.array([0, 2, 4, 1])
        loss = CrossEntropyLoss()(Tensor(logits, dtype=np.float64), labels)
        shifted = logits - logits.max(axis=1, keepdims=True)
        logp = shifted - np.log(np.exp(shifted).sum(axis=1, keepdims=True))
        ref = -logp[np.arange(4), labels].mean()
        assert loss.item() == pytest.approx(ref, rel=1e-6)

    def test_perfect_prediction_low_loss(self):
        logits = np.full((2, 3), -100.0)
        logits[0, 1] = 100.0
        logits[1, 2] = 100.0
        loss = CrossEntropyLoss()(Tensor(logits), np.array([1, 2]))
        assert loss.item() < 1e-3

    def test_uniform_logits_log_k(self):
        loss = CrossEntropyLoss()(Tensor(np.zeros((5, 10))), np.zeros(5, dtype=int))
        assert loss.item() == pytest.approx(np.log(10), rel=1e-5)

    def test_gradient_is_softmax_minus_onehot(self, rng):
        logits = Tensor(rng.normal(size=(3, 4)), requires_grad=True, dtype=np.float64)
        labels = np.array([1, 0, 3])
        CrossEntropyLoss()(logits, labels).backward()
        p = np.exp(logits.data) / np.exp(logits.data).sum(axis=1, keepdims=True)
        onehot = np.eye(4)[labels]
        np.testing.assert_allclose(logits.grad, (p - onehot) / 3, rtol=1e-5, atol=1e-8)

    def test_label_smoothing_bounds(self, rng):
        logits = Tensor(rng.normal(size=(4, 5)), dtype=np.float64)
        labels = np.array([0, 1, 2, 3])
        plain = CrossEntropyLoss()(logits, labels).item()
        smooth = CrossEntropyLoss(smoothing=0.1)(logits, labels).item()
        assert smooth != plain

    def test_invalid_smoothing_raises(self):
        with pytest.raises(ValueError):
            CrossEntropyLoss(smoothing=1.5)


class TestSGD:
    def test_plain_sgd_step(self):
        p = nn.Parameter(np.array([1.0]))
        p.grad = np.array([0.5])
        SGD([p], lr=0.1, momentum=0.0, weight_decay=0.0).step()
        assert p.data[0] == pytest.approx(0.95)

    def test_weight_decay_pulls_to_zero(self):
        p = nn.Parameter(np.array([1.0]))
        opt = SGD([p], lr=0.1, momentum=0.0, weight_decay=0.1)
        p.grad = np.array([0.0])
        opt.step()
        assert p.data[0] == pytest.approx(0.99)

    def test_momentum_accumulates(self):
        p = nn.Parameter(np.array([0.0]))
        opt = SGD([p], lr=1.0, momentum=0.9, weight_decay=0.0)
        for _ in range(2):
            p.grad = np.array([1.0])
            opt.step()
        # step1: v=1 -> p=-1; step2: v=1.9 -> p=-2.9
        assert p.data[0] == pytest.approx(-2.9)

    def test_matches_torch_semantics_vs_reference(self, rng):
        """Cross-check a short trajectory against a hand-rolled reference
        implementing torch's SGD update rule."""
        w0 = rng.normal(size=(3,))
        p = nn.Parameter(w0.copy())
        opt = SGD([p], lr=0.05, momentum=0.9, weight_decay=0.01)
        ref_w = w0.copy().astype(np.float64)
        ref_v = np.zeros(3)
        for step in range(5):
            g = np.sin(ref_w + step)  # deterministic pseudo-gradient
            p.grad = np.sin(p.data.astype(np.float64) + step)
            opt.step()
            gg = g + 0.01 * ref_w
            ref_v = 0.9 * ref_v + gg
            ref_w = ref_w - 0.05 * ref_v
        np.testing.assert_allclose(p.data, ref_w, rtol=1e-5)

    def test_none_grad_skipped(self):
        p = nn.Parameter(np.array([1.0]))
        SGD([p], lr=0.1).step()  # no grad set
        assert p.data[0] == 1.0

    def test_empty_params_raise(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_nesterov(self):
        p = nn.Parameter(np.array([0.0]))
        opt = SGD([p], lr=1.0, momentum=0.9, weight_decay=0.0, nesterov=True)
        p.grad = np.array([1.0])
        opt.step()
        assert p.data[0] == pytest.approx(-1.9)

    def test_zero_grad_clears(self):
        p = nn.Parameter(np.array([1.0]))
        p.grad = np.array([1.0])
        opt = SGD([p], lr=0.1)
        opt.zero_grad()
        assert p.grad is None


class TestSchedulers:
    def _opt(self, lr=0.1):
        return SGD([nn.Parameter(np.zeros(1))], lr=lr)

    def test_constant(self):
        opt = self._opt()
        sched = ConstantLR(opt)
        for _ in range(5):
            sched.step()
        assert opt.lr == 0.1

    def test_step_lr(self):
        opt = self._opt()
        sched = StepLR(opt, step_size=2, gamma=0.1)
        lrs = []
        for _ in range(4):
            sched.step()
            lrs.append(opt.lr)
        assert lrs == pytest.approx([0.1, 0.01, 0.01, 0.001])

    def test_cosine_warm_restarts_paper_schedule(self):
        """T_0=10, T_mult=2: restarts at epochs 10 and 30."""
        opt = self._opt(lr=0.1)
        sched = CosineAnnealingWarmRestarts(opt, T_0=10, T_mult=2, eta_min=1e-4)
        lrs = [0.1]
        for _ in range(35):
            sched.step()
            lrs.append(opt.lr)
        # just before the first restart LR is near eta_min
        assert lrs[9] < 0.01
        # restart at epoch 10 returns to base LR
        assert lrs[10] == pytest.approx(0.1, rel=1e-6)
        # second cycle is twice as long: epoch 30 restarts again
        assert lrs[30] == pytest.approx(0.1, rel=1e-6)
        assert lrs[29] < 0.01

    def test_cosine_monotone_within_cycle(self):
        opt = self._opt()
        sched = CosineAnnealingWarmRestarts(opt, T_0=10)
        lrs = []
        for _ in range(10):
            lrs.append(opt.lr)
            sched.step()
        assert all(a >= b for a, b in zip(lrs, lrs[1:]))

    def test_invalid_t0_raises(self):
        with pytest.raises(ValueError):
            CosineAnnealingWarmRestarts(self._opt(), T_0=0)


class TestMetrics:
    def test_accuracy(self):
        logits = np.array([[0.9, 0.1], [0.2, 0.8], [0.6, 0.4]])
        assert accuracy(logits, [0, 1, 1]) == pytest.approx(2 / 3)

    def test_topk(self):
        logits = np.array([[3.0, 2.0, 1.0, 0.0]])
        assert topk_accuracy(logits, [2], k=3) == 1.0
        assert topk_accuracy(logits, [3], k=3) == 0.0

    def test_confusion_matrix(self):
        logits = np.eye(3)[[0, 1, 1, 2]]
        cm = confusion_matrix(logits, [0, 1, 2, 2], num_classes=3)
        assert cm[2, 1] == 1  # true 2 predicted 1
        assert cm.sum() == 4
        assert np.trace(cm) == 3


class TestTrainer:
    def _toy_problem(self):
        """Linearly separable 2-class blobs."""
        rng = np.random.default_rng(0)
        n = 60
        x0 = rng.normal(size=(n, 2, 4, 4)) - 1.2
        x1 = rng.normal(size=(n, 2, 4, 4)) + 1.2
        images = np.concatenate([x0, x1]).astype(np.float32)
        labels = np.array([0] * n + [1] * n)
        ds = ArrayDataset(images, labels)
        model = nn.Sequential(
            nn.Flatten(), nn.Linear(32, 2, rng=np.random.default_rng(1))
        )
        return ds, model

    def test_loss_decreases_and_learns(self):
        ds, model = self._toy_problem()
        loader = DataLoader(ds, batch_size=20, shuffle=True, seed=0)
        trainer = Trainer(model, SGD(model.parameters(), lr=0.1, weight_decay=0.0))
        hist = trainer.fit(loader, loader, epochs=5)
        assert hist.train_loss[-1] < hist.train_loss[0]
        assert hist.test_accuracy[-1] > 0.95

    def test_history_fields_aligned(self):
        ds, model = self._toy_problem()
        loader = DataLoader(ds, batch_size=30)
        trainer = Trainer(model, SGD(model.parameters(), lr=0.05))
        hist = trainer.fit(loader, loader, epochs=3)
        assert len(hist.epoch) == len(hist.train_loss) == 3
        assert len(hist.test_accuracy) == 3

    def test_eval_every(self):
        ds, model = self._toy_problem()
        loader = DataLoader(ds, batch_size=30)
        trainer = Trainer(model, SGD(model.parameters(), lr=0.05))
        hist = trainer.fit(loader, loader, epochs=4, eval_every=2)
        assert np.isnan(hist.test_accuracy[0])
        assert not np.isnan(hist.test_accuracy[1])

    def test_best(self):
        ds, model = self._toy_problem()
        loader = DataLoader(ds, batch_size=30)
        trainer = Trainer(model, SGD(model.parameters(), lr=0.1, weight_decay=0.0))
        hist = trainer.fit(loader, loader, epochs=3)
        epoch, acc = hist.best()
        assert acc == max(hist.test_accuracy)

    def test_scheduler_steps_each_epoch(self):
        ds, model = self._toy_problem()
        loader = DataLoader(ds, batch_size=30)
        opt = SGD(model.parameters(), lr=0.1)
        sched = StepLR(opt, step_size=1, gamma=0.5)
        trainer = Trainer(model, opt, scheduler=sched)
        hist = trainer.fit(loader, epochs=2)
        assert hist.lr == pytest.approx([0.1, 0.05])


class TestHistoryBest:
    def test_best_ignores_nan_epochs(self):
        from repro.train import TrainingHistory

        h = TrainingHistory()
        h.epoch.extend([0, 1, 2, 3])
        h.test_accuracy.extend([float("nan"), 0.5, float("nan"), 0.4])
        epoch, acc = h.best()
        assert (epoch, acc) == (1, 0.5)

    def test_best_all_nan(self):
        from repro.train import TrainingHistory

        h = TrainingHistory()
        h.epoch.extend([0])
        h.test_accuracy.extend([float("nan")])
        assert h.best() == (0, 0.0)

    def test_best_empty(self):
        from repro.train import TrainingHistory

        assert TrainingHistory().best() == (0, 0.0)


class TestClipGradNorm:
    def test_no_clip_below_threshold(self):
        from repro.train import clip_grad_norm

        p = nn.Parameter(np.zeros(3))
        p.grad = np.array([0.3, 0.4, 0.0])  # norm 0.5
        norm = clip_grad_norm([p], max_norm=1.0)
        assert norm == pytest.approx(0.5)
        np.testing.assert_allclose(p.grad, [0.3, 0.4, 0.0])

    def test_clips_to_max_norm(self):
        from repro.train import clip_grad_norm

        p = nn.Parameter(np.zeros(2))
        p.grad = np.array([3.0, 4.0])  # norm 5
        norm = clip_grad_norm([p], max_norm=1.0)
        assert norm == pytest.approx(5.0)
        assert np.linalg.norm(p.grad) == pytest.approx(1.0)

    def test_global_norm_across_params(self):
        from repro.train import clip_grad_norm

        p1, p2 = nn.Parameter(np.zeros(1)), nn.Parameter(np.zeros(1))
        p1.grad = np.array([3.0])
        p2.grad = np.array([4.0])
        clip_grad_norm([p1, p2], max_norm=1.0)
        total = np.sqrt(p1.grad[0] ** 2 + p2.grad[0] ** 2)
        assert total == pytest.approx(1.0)

    def test_skips_none_grads(self):
        from repro.train import clip_grad_norm

        p = nn.Parameter(np.zeros(1))
        assert clip_grad_norm([p], max_norm=1.0) == 0.0

    def test_trainer_integration(self):
        from repro.train import Trainer

        rng = np.random.default_rng(0)
        ds = ArrayDataset(
            rng.normal(size=(16, 1, 2, 2)).astype(np.float32) * 100,
            rng.integers(0, 2, size=16),
        )
        model = nn.Sequential(nn.Flatten(), nn.Linear(4, 2, rng=rng))
        trainer = Trainer(model, SGD(model.parameters(), lr=0.1),
                          clip_grad=0.5)
        loader = DataLoader(ds, batch_size=16)
        trainer.fit(loader, epochs=2)
        assert np.isfinite(
            np.concatenate([p.data.ravel() for p in model.parameters()])
        ).all()
