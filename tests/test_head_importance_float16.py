"""Tests for head-importance analysis and the float16 design point."""

import numpy as np
import pytest

from repro import nn
from repro.nn import functional
from repro.experiments.designs import proposed_mhsa_design, proposed_mhsa_module
from repro.fpga import Arithmetic, MHSAAccelerator
from repro.models import build_model
from repro.profiling import head_importance
from repro.tensor import Tensor, no_grad


class TestHeadMask:
    def test_mask_all_ones_is_identity(self, rng):
        m = nn.MHSA2d(8, 3, 3, heads=2, rng=rng)
        x = rng.normal(size=(1, 8, 3, 3)).astype(np.float32)
        np.testing.assert_array_equal(
            functional.mhsa2d_eval(m, x, head_mask=np.ones(2)), functional.mhsa2d_eval(m, x)
        )

    def test_zero_mask_kills_output(self, rng):
        m = nn.MHSA2d(8, 3, 3, heads=2, pos_enc="none",
                      attention_activation="softmax", rng=rng)
        x = rng.normal(size=(1, 8, 3, 3)).astype(np.float32)
        out = functional.mhsa2d_eval(m, x, head_mask=np.zeros(2))
        np.testing.assert_allclose(out, 0.0, atol=1e-7)

    def test_single_head_masked_zeroes_its_channels(self, rng):
        m = nn.MHSA2d(8, 3, 3, heads=2, pos_enc="none", rng=rng)
        x = rng.normal(size=(1, 8, 3, 3)).astype(np.float32)
        out = functional.mhsa2d_eval(m, x, head_mask=np.array([0.0, 1.0]))
        # head 0 owns the first Dh=4 channels of the concatenated output
        np.testing.assert_allclose(out[:, :4], 0.0, atol=1e-7)
        assert np.abs(out[:, 4:]).max() > 0


class TestHeadImportance:
    @pytest.fixture(scope="class")
    def setup(self):
        from repro.data import DataLoader, SynthSTL
        from repro.experiments.quantization import trained_proposed_model

        model = trained_proposed_model(profile="tiny", epochs=5,
                                       n_train_per_class=30)
        test = SynthSTL("test", size=32, n_per_class=10, seed=0)
        images, labels = next(iter(DataLoader(test, batch_size=len(test))))
        return model, images, labels

    def test_rows_structure(self, setup):
        model, images, labels = setup
        rows = head_importance(model, images, labels)
        assert rows[0]["head"] is None
        assert len(rows) == 1 + model.mhsa.heads
        assert all(r["drop"] == pytest.approx(
            rows[0]["accuracy"] - r["accuracy"], abs=1e-9
        ) for r in rows[1:])

    def test_forward_restored(self, setup):
        model, images, labels = setup
        with no_grad():
            before = model(Tensor(images)).data
        head_importance(model, images, labels)
        with no_grad():
            after = model(Tensor(images)).data
        np.testing.assert_array_equal(before, after)

    def test_requires_single_mhsa(self, rng):
        model = build_model("odenet", profile="tiny")
        with pytest.raises(ValueError):
            head_importance(model, np.zeros((1, 3, 32, 32), dtype=np.float32),
                            np.zeros(1, dtype=np.int64))


class TestFloat16Design:
    def test_sits_between_fixed_and_float32(self):
        fixed = proposed_mhsa_design(Arithmetic.fixed(
            __import__("repro.fixedpoint", fromlist=["QFormat"]).QFormat(32, 16),
            __import__("repro.fixedpoint", fromlist=["QFormat"]).QFormat(24, 8),
        ))
        f16 = proposed_mhsa_design(Arithmetic.float16())
        f32 = proposed_mhsa_design(Arithmetic.float32())
        assert fixed.total_cycles() < f16.total_cycles() < f32.total_cycles()
        assert (fixed.resource_report().dsp < f16.resource_report().dsp
                < f32.resource_report().dsp)

    def test_functional_output_close_to_float32(self, rng):
        m = proposed_mhsa_module()
        acc = MHSAAccelerator(m, proposed_mhsa_design(Arithmetic.float16()))
        x = rng.normal(size=(1, 64, 6, 6)).astype(np.float32)
        ref = functional.mhsa2d_eval(m, x)
        out = acc.run(x)
        assert np.abs(out - ref).max() < 0.05
        # output values are representable in fp16
        np.testing.assert_array_equal(out, out.astype(np.float16).astype(np.float32))

    def test_codegen_uses_half(self):
        from repro.fpga import generate_hls_kernel

        src = generate_hls_kernel(proposed_mhsa_design(Arithmetic.float16()))
        assert "typedef half feat_t;" in src

    def test_str(self):
        assert str(Arithmetic.float16()) == "float16"
