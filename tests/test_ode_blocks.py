"""Tests for ODEBlock and its dynamics modules."""

import numpy as np
import pytest

from repro import nn, ode
from repro.tensor import Tensor, no_grad


class TestTimeConcat:
    def test_time_channel_appended(self, rng):
        conv = ode.TimeConcatConv2d(3, 4, rng=rng)
        assert conv.conv.in_channels == 4  # 3 + time channel
        out = conv(0.5, Tensor(rng.normal(size=(2, 3, 5, 5)).astype(np.float32)))
        assert out.shape == (2, 4, 5, 5)

    def test_time_value_matters(self, rng):
        conv = ode.TimeConcatConv2d(2, 2, rng=rng)
        x = Tensor(rng.normal(size=(1, 2, 4, 4)).astype(np.float32))
        with no_grad():
            a = conv(0.0, x).data
            b = conv(1.0, x).data
        assert not np.allclose(a, b)

    def test_dsc_variant(self, rng):
        conv = ode.TimeConcatDSC2d(4, 4, rng=rng)
        out = conv(0.3, Tensor(rng.normal(size=(1, 4, 6, 6)).astype(np.float32)))
        assert out.shape == (1, 4, 6, 6)


class TestConvODEFunc:
    def test_shape_preserved(self, rng):
        func = ode.ConvODEFunc(8, conv="dsc", rng=rng)
        out = func(0.0, Tensor(rng.normal(size=(2, 8, 4, 4)).astype(np.float32)))
        assert out.shape == (2, 8, 4, 4)

    def test_full_conv_variant_bigger(self, rng):
        dsc = ode.ConvODEFunc(16, conv="dsc", rng=rng)
        full = ode.ConvODEFunc(16, conv="full", rng=rng)
        assert full.num_parameters() > dsc.num_parameters()

    def test_nfe_increments(self, rng):
        func = ode.ConvODEFunc(4, rng=rng)
        block = ode.ODEBlock(func, solver="rk4", steps=3)
        block(Tensor(rng.normal(size=(1, 4, 4, 4)).astype(np.float32)))
        assert func.nfe == 12  # 4 evals per RK4 step x 3 steps


class TestMHSABottleneckODEFunc:
    def test_shape_preserved(self, rng):
        func = ode.MHSABottleneckODEFunc(16, 8, 4, 4, heads=2, rng=rng)
        out = func(0.0, Tensor(rng.normal(size=(1, 16, 4, 4)).astype(np.float32)))
        assert out.shape == (1, 16, 4, 4)

    def test_contains_single_mhsa(self, rng):
        func = ode.MHSABottleneckODEFunc(16, 8, 4, 4, heads=2, rng=rng)
        mhsas = [m for m in func.modules() if isinstance(m, nn.MHSA2d)]
        assert len(mhsas) == 1
        assert mhsas[0].channels == 8

    def test_paper_configuration(self, rng):
        """The proposed model's block: 256 -> 64 bottleneck at 6x6."""
        func = ode.MHSABottleneckODEFunc(256, 64, 6, 6, heads=4, rng=rng)
        assert func.mhsa.dim_head == 16
        out = func(0.5, Tensor(rng.normal(size=(1, 256, 6, 6)).astype(np.float32)))
        assert out.shape == (1, 256, 6, 6)


class TestODEBlock:
    def test_parameter_count_independent_of_steps(self, rng):
        """The core compression claim: C iterations share one parameter
        set, so parameters do not grow with depth."""
        f1 = ode.ConvODEFunc(8, rng=np.random.default_rng(0))
        f2 = ode.ConvODEFunc(8, rng=np.random.default_rng(0))
        b1 = ode.ODEBlock(f1, steps=2)
        b2 = ode.ODEBlock(f2, steps=50)
        assert b1.num_parameters() == b2.num_parameters()

    def test_more_steps_changes_output(self, rng):
        func = ode.ConvODEFunc(4, rng=rng)
        x = Tensor(rng.normal(size=(1, 4, 4, 4)).astype(np.float32))
        with no_grad():
            out2 = ode.ODEBlock(func, steps=2)(x).data
            out8 = ode.ODEBlock(func, steps=8)(x).data
        assert not np.allclose(out2, out8)

    def test_solver_instance_accepted(self, rng):
        func = ode.ConvODEFunc(4, rng=rng)
        block = ode.ODEBlock(func, solver=ode.RK4(), steps=2)
        out = block(Tensor(rng.normal(size=(1, 4, 3, 3)).astype(np.float32)))
        assert out.shape == (1, 4, 3, 3)

    def test_backward_through_block(self, rng):
        func = ode.ConvODEFunc(4, rng=rng)
        block = ode.ODEBlock(func, steps=3)
        x = Tensor(
            rng.normal(size=(2, 4, 4, 4)).astype(np.float32), requires_grad=True
        )
        block(x).sum().backward()
        assert x.grad is not None
        for name, p in block.named_parameters():
            assert p.grad is not None, name

    def test_repr(self, rng):
        block = ode.ODEBlock(ode.ConvODEFunc(4, rng=rng), steps=5)
        assert "euler" in repr(block)
        assert "steps=5" in repr(block)

    def test_identity_dynamics_give_exponential_growth(self):
        """Sanity: with f(z) = z, Euler gives (1 + 1/C)^C -> e."""

        class IdentityFunc(nn.Module):
            def forward(self, t, z):
                return z

        block = ode.ODEBlock(IdentityFunc(), solver="euler", steps=1000)
        out = block(Tensor(np.ones((1, 1)), dtype=np.float64))
        assert out.data[0, 0] == pytest.approx(np.e, rel=1e-3)
