"""Tests for memory-efficient ODE backward passes (checkpoint / adjoint)."""

import numpy as np
import pytest

from repro import ode
from repro.ode import AdjointODEBlock
from repro.tensor import Tensor


def _make_func(seed, channels=6):
    func = ode.ConvODEFunc(channels, conv="dsc", rng=np.random.default_rng(seed))
    for p in func.parameters():
        p.data = p.data.astype(np.float64)
    return func


def _grads(block, x_data):
    x = Tensor(x_data, requires_grad=True, dtype=np.float64)
    block(x).sum().backward()
    return x.grad, {n: p.grad for n, p in block.named_parameters()}


class TestCheckpointMode:
    def test_matches_backprop_exactly(self, rng):
        x_data = rng.normal(size=(2, 6, 5, 5))
        ref_block = ode.ODEBlock(_make_func(3), solver="euler", steps=8)
        chk_block = AdjointODEBlock(_make_func(3), steps=8, mode="checkpoint")
        gx_ref, gp_ref = _grads(ref_block, x_data)
        gx_chk, gp_chk = _grads(chk_block, x_data)
        np.testing.assert_allclose(gx_chk, gx_ref, atol=1e-12)
        for name in gp_ref:
            np.testing.assert_allclose(gp_chk[name], gp_ref[name], atol=1e-12)

    def test_forward_matches_odeblock(self, rng):
        x = Tensor(rng.normal(size=(1, 6, 4, 4)), dtype=np.float64)
        ref = ode.ODEBlock(_make_func(5), solver="euler", steps=4)(x)
        chk = AdjointODEBlock(_make_func(5), steps=4, mode="checkpoint")(x)
        np.testing.assert_allclose(chk.data, ref.data, atol=1e-12)

    def test_gradient_accumulates_across_backwards(self, rng):
        block = AdjointODEBlock(_make_func(1), steps=3)
        x_data = rng.normal(size=(1, 6, 3, 3))
        _grads(block, x_data)
        first = {n: p.grad.copy() for n, p in block.named_parameters()}
        _grads(block, x_data)
        for n, p in block.named_parameters():
            np.testing.assert_allclose(p.grad, 2 * first[n], rtol=1e-10)


class TestAdjointMode:
    def test_gradient_error_is_order_h(self, rng):
        """The O(1)-memory reconstruction converges at O(h)."""
        x_data = rng.normal(size=(1, 6, 4, 4))
        errors = []
        for steps in (8, 64):
            gx_ref, _ = _grads(
                ode.ODEBlock(_make_func(3), solver="euler", steps=steps), x_data
            )
            gx_adj, _ = _grads(
                AdjointODEBlock(_make_func(3), steps=steps, mode="adjoint"),
                x_data,
            )
            errors.append(np.abs(gx_ref - gx_adj).max() / np.abs(gx_ref).max())
        # 8x more steps must shrink the reconstruction error several-fold
        # (exact O(h) would be 8x; allow constant wobble)
        assert errors[1] < errors[0] / 2.5
        assert errors[1] < 0.1

    def test_can_train_a_step(self, rng):
        from repro.train import SGD

        block = AdjointODEBlock(
            ode.ConvODEFunc(4, rng=np.random.default_rng(0)), steps=4,
            mode="adjoint",
        )
        x = Tensor(rng.normal(size=(2, 4, 4, 4)).astype(np.float32))
        loss = (block(x) ** 2).mean()
        loss.backward()
        before = loss.item()
        SGD(block.parameters(), lr=0.05, weight_decay=0.0).step()
        after = (block(x) ** 2).mean().item()
        assert after < before


class TestInterface:
    def test_invalid_mode_raises(self):
        with pytest.raises(ValueError):
            AdjointODEBlock(_make_func(0), mode="magic")

    def test_repr(self):
        block = AdjointODEBlock(_make_func(0), steps=5, mode="adjoint")
        assert "adjoint" in repr(block)
        assert "steps=5" in repr(block)

    def test_parameter_count_matches_odeblock(self):
        a = AdjointODEBlock(_make_func(7), steps=4)
        b = ode.ODEBlock(_make_func(7), steps=4)
        assert a.num_parameters() == b.num_parameters()

    def test_no_grad_inference(self, rng):
        from repro.tensor import no_grad

        block = AdjointODEBlock(_make_func(2), steps=3)
        with no_grad():
            out = block(Tensor(rng.normal(size=(1, 6, 3, 3)), dtype=np.float64))
        assert out._ctx is None
