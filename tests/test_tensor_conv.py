"""Unit tests for conv2d and pooling ops."""

import numpy as np
import pytest
import scipy.signal

from repro.tensor import Tensor, gradcheck


def _ref_conv2d(x, w, stride=(1, 1), padding=(0, 0)):
    """Reference dense conv via scipy.correlate2d (groups=1)."""
    n, c, h, wd = x.shape
    f = w.shape[0]
    ph, pw = padding
    xp = np.pad(x, ((0, 0), (0, 0), (ph, ph), (pw, pw)))
    oh = (h + 2 * ph - w.shape[2]) // stride[0] + 1
    ow = (wd + 2 * pw - w.shape[3]) // stride[1] + 1
    out = np.zeros((n, f, oh, ow))
    for ni in range(n):
        for fi in range(f):
            acc = np.zeros((xp.shape[2] - w.shape[2] + 1, xp.shape[3] - w.shape[3] + 1))
            for ci in range(c):
                acc += scipy.signal.correlate2d(xp[ni, ci], w[fi, ci], mode="valid")
            out[ni, fi] = acc[:: stride[0], :: stride[1]]
    return out


class TestConv2dValues:
    def test_matches_scipy_reference(self, rng):
        x = rng.normal(size=(2, 3, 8, 8))
        w = rng.normal(size=(4, 3, 3, 3))
        out = Tensor(x).conv2d(Tensor(w), stride=(2, 2), padding=(1, 1))
        np.testing.assert_allclose(
            out.data, _ref_conv2d(x, w, (2, 2), (1, 1)), rtol=1e-5, atol=1e-7
        )

    def test_identity_kernel(self, rng):
        x = rng.normal(size=(1, 1, 5, 5))
        w = np.zeros((1, 1, 3, 3))
        w[0, 0, 1, 1] = 1.0
        out = Tensor(x).conv2d(Tensor(w), padding=(1, 1))
        np.testing.assert_allclose(out.data, x, rtol=1e-6)

    def test_1x1_conv_is_channel_mix(self, rng):
        x = rng.normal(size=(2, 3, 4, 4))
        w = rng.normal(size=(5, 3, 1, 1))
        out = Tensor(x).conv2d(Tensor(w))
        ref = np.einsum("nchw,fc->nfhw", x, w[:, :, 0, 0])
        np.testing.assert_allclose(out.data, ref, rtol=1e-5)

    def test_depthwise_groups(self, rng):
        x = rng.normal(size=(1, 4, 5, 5))
        w = rng.normal(size=(4, 1, 3, 3))
        out = Tensor(x).conv2d(Tensor(w), padding=(1, 1), groups=4)
        # each channel convolved independently
        for c in range(4):
            ref = _ref_conv2d(x[:, c : c + 1], w[c : c + 1], (1, 1), (1, 1))
            np.testing.assert_allclose(out.data[:, c : c + 1], ref, rtol=1e-5, atol=1e-7)

    def test_output_shape_formula(self, rng):
        x = Tensor(rng.normal(size=(1, 2, 11, 13)))
        w = Tensor(rng.normal(size=(3, 2, 3, 5)))
        out = x.conv2d(w, stride=(2, 3), padding=(1, 2))
        assert out.shape == (1, 3, 6, 5)

    def test_empty_output_raises(self, rng):
        x = Tensor(rng.normal(size=(1, 1, 2, 2)))
        w = Tensor(rng.normal(size=(1, 1, 5, 5)))
        with pytest.raises(ValueError):
            x.conv2d(w)

    def test_group_mismatch_raises(self, rng):
        x = Tensor(rng.normal(size=(1, 4, 5, 5)))
        w = Tensor(rng.normal(size=(4, 2, 3, 3)))
        with pytest.raises(ValueError):
            x.conv2d(w, groups=4)


class TestConv2dGrads:
    def test_grad_dense(self, rng):
        gradcheck(
            lambda x, w: x.conv2d(w, padding=(1, 1)),
            [rng.normal(size=(2, 2, 5, 5)), rng.normal(size=(3, 2, 3, 3))],
        )

    def test_grad_strided(self, rng):
        gradcheck(
            lambda x, w: x.conv2d(w, stride=(2, 2)),
            [rng.normal(size=(1, 2, 6, 6)), rng.normal(size=(2, 2, 2, 2))],
        )

    def test_grad_grouped(self, rng):
        gradcheck(
            lambda x, w: x.conv2d(w, groups=2, padding=(1, 1)),
            [rng.normal(size=(2, 4, 4, 4)), rng.normal(size=(6, 2, 3, 3))],
        )

    def test_grad_asymmetric_kernel(self, rng):
        gradcheck(
            lambda x, w: x.conv2d(w, padding=(0, 1)),
            [rng.normal(size=(1, 1, 4, 5)), rng.normal(size=(2, 1, 1, 3))],
        )


class TestPooling:
    def test_maxpool_values(self, rng):
        x = rng.normal(size=(1, 1, 4, 4))
        out = Tensor(x).max_pool2d((2, 2))
        ref = x.reshape(1, 1, 2, 2, 2, 2).max(axis=(3, 5))
        np.testing.assert_allclose(out.data, ref)

    def test_maxpool_grad(self, rng):
        gradcheck(lambda x: x.max_pool2d((2, 2)), [rng.normal(size=(2, 2, 6, 6))])

    def test_maxpool_overlapping_grad(self, rng):
        gradcheck(
            lambda x: x.max_pool2d((3, 3), stride=(2, 2), padding=(1, 1)),
            [rng.normal(size=(1, 2, 7, 7))],
        )

    def test_maxpool_padding_never_wins(self):
        x = -np.ones((1, 1, 2, 2))
        out = Tensor(x).max_pool2d((2, 2), stride=(2, 2), padding=(1, 1))
        # all pooled values come from the (negative) input, not the pad
        assert (out.data <= 0).all()

    def test_avgpool_values(self, rng):
        x = rng.normal(size=(1, 2, 4, 4))
        out = Tensor(x).avg_pool2d((2, 2))
        ref = x.reshape(1, 2, 2, 2, 2, 2).mean(axis=(3, 5))
        np.testing.assert_allclose(out.data, ref, rtol=1e-6)

    def test_avgpool_grad(self, rng):
        gradcheck(
            lambda x: x.avg_pool2d((2, 2), stride=(2, 2)),
            [rng.normal(size=(2, 1, 4, 4))],
        )

    def test_resnet_stem_pool_shape(self, rng):
        # maxpool 3x3 stride 2 pad 1 on 48x48 -> 24x24 (used by the stem)
        out = Tensor(rng.normal(size=(1, 8, 48, 48))).max_pool2d(
            (3, 3), stride=(2, 2), padding=(1, 1)
        )
        assert out.shape == (1, 8, 24, 24)
