"""Integration tests for the experiment harness (shape-level paper claims)."""

import numpy as np
import pytest

from repro.experiments import (
    fig9_10_numeric_error,
    format_table,
    learning_curves,
    power_summary,
    table1_fixed_vs_float,
    table2_buffer_management,
    table3_parallelization,
    table4_param_size,
    table5_accuracy,
    table6_mhsa_ratio,
    table7_resource_utilization,
    table8_quant_accuracy,
    table9_execution_time,
)


class TestHardwareTables:
    def test_table1_shape(self):
        rows = table1_fixed_vs_float()
        fl, fx = rows
        assert fx["dsp"] < fl["dsp"] / 4
        assert fx["bram"] < fl["bram"]
        # both naive builds exceed the device
        assert not fl["fits"] and not fx["fits"]

    def test_table2_crossover(self):
        before, after = table2_buffer_management()
        assert before["bram_util"] > 1.0
        assert after["bram_util"] < 1.0

    def test_table3_agreement(self):
        rows = table3_parallelization()
        total = rows[-1]
        assert total["stage"] == "Total"
        assert total["orig_cycles"] == pytest.approx(total["paper_orig"], rel=0.01)
        assert total["par_cycles"] == pytest.approx(total["paper_par"], rel=0.01)

    def test_table4_within_tolerance(self):
        rows = table4_param_size()
        by = {r["model"]: r for r in rows}
        for name, row in by.items():
            assert row["params"] == pytest.approx(row["paper_params"], rel=0.15), name
        assert by["ode_botnet"]["reduction_vs_botnet"] == pytest.approx(0.973, abs=0.01)

    def test_table7_every_build_fits(self):
        assert all(r["fits"] for r in table7_resource_utilization())

    def test_table9_ordering_and_factors(self):
        rows = table9_execution_time(n_runs=20)
        cpu, fl, fx = rows
        assert cpu["mean_ms"] > fl["mean_ms"] > fx["mean_ms"]
        assert fx["speedup_vs_cpu"] == pytest.approx(2.63, rel=0.07)
        assert fl["speedup_vs_cpu"] == pytest.approx(1.45, rel=0.10)

    def test_power_summary(self):
        s = power_summary(n_runs=10)
        assert s["ip_power_fixed_w"] < s["ip_power_float_w"]
        assert s["energy_efficiency"] == pytest.approx(1.98, rel=0.1)

    def test_table6_ordering(self):
        rows = table6_mhsa_ratio(repeats=2)
        by = {r["model"]: r["ratio"] for r in rows}
        # proposed model's block is more attention-dominated than BoTNet's
        assert by["ode_botnet"] > by["botnet50"]
        assert 0.05 < by["botnet50"] < 0.6
        assert 0.2 < by["ode_botnet"] < 0.9


class TestAccuracyExperiments:
    def test_table5_tiny_ordering(self):
        """Table V shape: convolution-based models beat pure attention
        at small sample counts (the paper's central accuracy claim)."""
        rows = table5_accuracy(
            profile="tiny", epochs=10, n_train_per_class=40, n_test_per_class=20,
            models=("odenet", "ode_botnet", "vit_base"),
        )
        by = {r["model"]: r["accuracy"] for r in rows}
        assert by["ode_botnet"] > by["vit_base"] + 5
        assert by["odenet"] > by["vit_base"] + 5
        # and the hybrids actually learned
        assert by["ode_botnet"] > 80

    def test_learning_curves_structure(self):
        curves = learning_curves(
            models=("ode_botnet",), profile="tiny", epochs=3,
            n_train_per_class=10, n_test_per_class=5,
        )
        c = curves["ode_botnet"]
        assert len(c["epoch"]) == 3
        assert len(c["test_accuracy"]) == 3
        assert all(0 <= a <= 100 for a in c["test_accuracy"])


class TestQuantizationExperiments:
    @pytest.fixture(scope="class")
    def trained(self):
        from repro.experiments.quantization import trained_proposed_model

        return trained_proposed_model(
            profile="tiny", epochs=3, n_train_per_class=20
        )

    def test_table8_wide_formats_lossless(self, trained):
        rows = table8_quant_accuracy(
            model=trained, profile="tiny", n_per_class=10,
        )
        by = {r["format"]: r["accuracy"] for r in rows}
        # Table VIII shape: the two widest formats match float accuracy
        assert by["32(16)-24(8)"] == pytest.approx(by["float"], abs=1.0)
        assert by["24(12)-20(6)"] == pytest.approx(by["float"], abs=2.0)
        # narrowest format loses accuracy relative to the widest
        assert by["16(8)-12(4)"] <= by["32(16)-24(8)"]

    def test_fig9_10_error_monotone(self, trained):
        rows = fig9_10_numeric_error(model=trained, profile="tiny", n_per_class=5)
        means = [r["mean_abs_diff"] for r in rows]
        maxes = [r["max_abs_diff"] for r in rows]
        assert means == sorted(means)
        assert all(mx >= mn for mx, mn in zip(maxes, means))
        assert means[-1] > means[0]


class TestReport:
    def test_format_table(self):
        out = format_table(["a", "b"], [[1, 2.5], ["x", 10000]])
        assert "a" in out and "x" in out
        assert "10,000" in out


class TestPaperReferenceConsistency:
    def test_reference_dicts_cover_all_models(self):
        from repro.experiments import report
        from repro.models import MODELS

        assert set(report.PAPER_PARAMS) == set(MODELS)
        assert set(report.PAPER_ACCURACY) == set(MODELS)

    def test_exec_time_rows_match_table9_modes(self):
        from repro.experiments import report

        assert set(report.PAPER_EXEC_TIME) == {"CPU", "FPGA (float)",
                                               "FPGA (fixed)"}

    def test_quant_accuracy_covers_paper_formats(self):
        from repro.experiments import report
        from repro.fixedpoint import PAPER_FORMATS

        for fmt in PAPER_FORMATS:
            assert fmt in report.PAPER_QUANT_ACCURACY

    def test_headline_constants(self):
        from repro.experiments import report

        assert report.PAPER_SPEEDUP_FIXED == 2.63
        assert report.PAPER_ENERGY_EFFICIENCY == 1.98


class TestHlsReportConsistency:
    def test_report_numbers_match_design(self):
        from repro.experiments.designs import FIXED_DEFAULT, botnet_mhsa_design
        from repro.fpga import hls_report

        design = botnet_mhsa_design(FIXED_DEFAULT)
        text = hls_report(design)
        assert f"{design.total_cycles():,}" in text
        rep = design.resource_report()
        assert f"{rep.dsp:,}" in text
        assert f"{rep.bram:,}" in text
