"""Tests for variance analysis, Bosh3 and the dataflow design variant."""

import numpy as np
import pytest

from repro import ode
from repro.experiments.designs import FIXED_DEFAULT, botnet_mhsa_design, proposed_mhsa_design
from repro.models import build_model
from repro.profiling import (
    block_variance_ratio,
    mhsa_vs_conv_variance,
    stage_variance_profile,
)
from repro.tensor import Tensor


class TestVarianceAnalysis:
    def test_stage_profile_structure(self, rng):
        model = build_model("ode_botnet", profile="tiny").eval()
        x = Tensor(rng.normal(size=(4, 3, 32, 32)).astype(np.float32))
        rows = stage_variance_profile(model, x)
        assert [r["stage"] for r in rows] == [
            "stem", "block1", "down1", "block2", "down2", "block3",
        ]
        assert all(r["variance"] > 0 for r in rows)

    def test_block_variance_ratio_identity(self, rng):
        from repro import nn

        x = Tensor(rng.normal(size=(2, 4, 5, 5)).astype(np.float32))
        assert block_variance_ratio(nn.Identity(), x) == pytest.approx(1.0)

    def test_mhsa_vs_conv_keys(self, rng):
        model = build_model("ode_botnet", profile="tiny").eval()
        x = Tensor(rng.normal(size=(4, 3, 32, 32)).astype(np.float32))
        ratios = mhsa_vs_conv_variance(model, x)
        assert "block3 (mhsa)" in ratios
        assert "block1 (conv)" in ratios
        assert all(np.isfinite(v) for v in ratios.values())

    def test_plain_odenet_labels_conv(self, rng):
        model = build_model("odenet", profile="tiny").eval()
        x = Tensor(rng.normal(size=(2, 3, 32, 32)).astype(np.float32))
        ratios = mhsa_vs_conv_variance(model, x)
        assert "block3 (conv)" in ratios


class TestBosh3:
    def test_registered(self):
        assert "bosh3" in ode.available_solvers()

    def test_accuracy(self):
        s = ode.Bosh3(rtol=1e-7, atol=1e-9)
        z1 = s.integrate(lambda t, z: -z, Tensor(np.ones(3), dtype=np.float64))
        np.testing.assert_allclose(z1.data, np.exp(-1.0), atol=1e-6)

    def test_four_stages_per_step(self):
        s = ode.Bosh3()
        s.integrate(lambda t, z: -z, Tensor(np.ones(1), dtype=np.float64))
        assert s.stats["nfe"] == 4 * (s.stats["accepted"] + s.stats["rejected"])

    def test_cheaper_per_step_than_dopri5(self):
        """At loose tolerance Bosh3 needs fewer function evaluations per
        step (4 vs 7)."""
        b = ode.Bosh3(rtol=1e-2, atol=1e-3)
        d = ode.Dopri5(rtol=1e-2, atol=1e-3)
        z0 = Tensor(np.ones(1), dtype=np.float64)
        b.integrate(lambda t, z: -z, z0)
        d.integrate(lambda t, z: -z, z0)
        assert b.stats["nfe"] / max(b.stats["accepted"], 1) < d.stats["nfe"] / max(
            d.stats["accepted"], 1
        )

    def test_gradient_flows(self):
        z0 = Tensor(np.array([1.0]), requires_grad=True, dtype=np.float64)
        s = ode.Bosh3(rtol=1e-6, atol=1e-8)
        s.integrate(lambda t, z: -z, z0).sum().backward()
        assert z0.grad[0] == pytest.approx(np.exp(-1.0), rel=1e-3)

    def test_in_ode_block(self, rng):
        func = ode.ConvODEFunc(4, rng=rng)
        block = ode.ODEBlock(func, solver="bosh3", steps=4)
        out = block(Tensor(rng.normal(size=(1, 4, 4, 4)).astype(np.float32)))
        assert out.shape == (1, 4, 4, 4)


class TestDataflowDesign:
    def test_saves_cycles(self):
        seq = botnet_mhsa_design(FIXED_DEFAULT)
        df = botnet_mhsa_design(FIXED_DEFAULT, dataflow=True)
        assert df.total_cycles() < seq.total_cycles()
        # the saving is bounded by the weight-stream time
        saving = seq.total_cycles() - df.total_cycles()
        assert saving <= seq.weight_stream_cycles()

    def test_costs_a_second_weight_buffer(self):
        seq = botnet_mhsa_design(FIXED_DEFAULT)
        df = botnet_mhsa_design(FIXED_DEFAULT, dataflow=True)
        names = {b.name for b in df.buffer_plan().buffers}
        assert "W_shadow" in names
        assert df.resource_report().bram > seq.resource_report().bram

    def test_bram_tradeoff_at_512(self):
        """Design-space insight: the ping-pong buffer does NOT fit at
        the (512, 3, 3) geometry but does at the proposed (64, 6, 6)."""
        big = botnet_mhsa_design(FIXED_DEFAULT, dataflow=True)
        small = proposed_mhsa_design(FIXED_DEFAULT, dataflow=True)
        assert not big.resource_report().fits()
        assert small.resource_report().fits()
