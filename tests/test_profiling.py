"""Tests for timers, MAC counting and the Table VI breakdown."""

import numpy as np
import pytest

from repro import nn, ode
from repro.models import build_model
from repro.profiling import Timer, WallClock, count_macs, mhsa_time_ratio, model_macs
from repro.profiling.flops import mhsa_macs
from repro.tensor import Tensor


class TestTimers:
    def test_wallclock_measures(self):
        import time

        with WallClock() as t:
            time.sleep(0.01)
        assert t.ms >= 9

    def test_wallclock_unfinished_raises(self):
        t = WallClock()
        with pytest.raises(RuntimeError):
            _ = t.ms

    def test_timer_accumulates(self):
        timer = Timer()
        for _ in range(3):
            with timer.section("a"):
                pass
        assert timer.count("a") == 3
        assert timer.total("a") >= 0

    def test_timer_ratio(self):
        timer = Timer()
        timer.add("a", 3.0)
        timer.add("b", 1.0)
        assert timer.ratio("a") == pytest.approx(0.75)


class TestMacCounting:
    def test_conv_macs(self, rng):
        conv = nn.Conv2d(3, 8, 3, padding=1, rng=rng)
        macs = count_macs(conv, (4, 4))
        assert macs == 8 * 4 * 4 * 3 * 9

    def test_linear_macs(self, rng):
        assert count_macs(nn.Linear(10, 5, rng=rng), (1, 1)) == 50

    def test_dsc_cheaper_than_dense(self, rng):
        dsc = count_macs(nn.DepthwiseSeparableConv2d(16, 16, 3, rng=rng), (8, 8))
        dense = count_macs(nn.Conv2d(16, 16, 3, padding=1, rng=rng), (8, 8))
        assert dsc < dense / 4

    def test_mhsa_macs_projections_dominate_at_512(self, rng):
        m = nn.MHSA2d(512, 3, 3, heads=4, rng=rng)
        total = mhsa_macs(m)
        proj = 3 * 9 * 512 * 512
        assert proj / total > 0.9

    def test_ode_block_scales_with_steps(self, rng):
        f = ode.ConvODEFunc(8, rng=rng)
        b2 = ode.ODEBlock(f, steps=2)
        b8 = ode.ODEBlock(ode.ConvODEFunc(8, rng=rng), steps=8)
        assert count_macs(b8, (6, 6)) == 4 * count_macs(b2, (6, 6))

    def test_rk4_block_4x_euler(self, rng):
        f = ode.ConvODEFunc(8, rng=rng)
        euler = ode.ODEBlock(f, solver="euler", steps=4)
        rk4 = ode.ODEBlock(ode.ConvODEFunc(8, rng=rng), solver="rk4", steps=4)
        assert count_macs(rk4, (6, 6)) == 4 * count_macs(euler, (6, 6))

    def test_model_macs_positive_for_all(self):
        for name in ("resnet50", "botnet50", "odenet", "ode_botnet"):
            m = build_model(name, profile="tiny")
            assert model_macs(m) > 0

    def test_proposed_model_far_fewer_macs_than_resnet(self):
        r = model_macs(build_model("resnet50", profile="paper"))
        p = model_macs(build_model("ode_botnet", profile="paper"))
        assert p < r

    def test_model_macs_requires_size(self, rng):
        with pytest.raises(ValueError):
            model_macs(nn.Linear(3, 3, rng=rng))


class TestTableVIBreakdown:
    def test_ratio_in_unit_interval(self, rng):
        func = ode.MHSABottleneckODEFunc(32, 16, 4, 4, heads=2, rng=rng)
        block = ode.ODEBlock(func, steps=2)
        block.eval()
        x = Tensor(rng.normal(size=(1, 32, 4, 4)).astype(np.float32))
        res = mhsa_time_ratio(block, x, repeats=2)
        assert 0.0 < res["ratio"] < 1.0
        assert res["mhsa_s"] < res["block_s"]

    def test_requires_exactly_one_mhsa(self, rng):
        block = nn.Sequential(nn.Conv2d(3, 3, 1, rng=rng))
        with pytest.raises(ValueError):
            mhsa_time_ratio(block, Tensor(np.zeros((1, 3, 2, 2), dtype=np.float32)))

    def test_forward_unmodified_after_measurement(self, rng):
        from repro.tensor import no_grad

        func = ode.MHSABottleneckODEFunc(16, 8, 4, 4, heads=2, rng=rng)
        block = ode.ODEBlock(func, steps=2)
        block.eval()
        x = Tensor(rng.normal(size=(1, 16, 4, 4)).astype(np.float32))
        with no_grad():
            before = block(x).data
        mhsa_time_ratio(block, x, repeats=1)
        with no_grad():
            after = block(x).data
        np.testing.assert_array_equal(before, after)


class TestVitMacs:
    def test_vit_macs_counted(self):
        from repro.models import build_model
        from repro.profiling import model_macs

        v = build_model("vit_base", profile="tiny")
        macs = model_macs(v)
        # lower bound: the qkv+proj linears alone
        n = v.num_patches + 1
        d = v.dim
        per_layer = n * d * 3 * d + n * d * d
        assert macs > len(list(v.blocks)) * per_layer

    def test_vit_base_macs_exceed_proposed(self):
        from repro.models import build_model
        from repro.profiling import model_macs

        v = model_macs(build_model("vit_base", profile="paper"))
        p = model_macs(build_model("ode_botnet", profile="paper"))
        assert v > 5 * p
