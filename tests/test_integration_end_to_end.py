"""End-to-end integration tests spanning the whole stack.

Each test exercises a full pipeline the way a user of the library
would: train -> checkpoint -> reload -> quantise -> accelerate.
"""

import numpy as np
import pytest

from repro.data import DataLoader, SynthSTL
from repro.experiments import FIXED_DEFAULT
from repro.fixedpoint import QFormat
from repro.fixedpoint.quantized_mhsa import use_quantized_mhsa
from repro.fpga import MHSAAccelerator, MHSADesign
from repro.models import build_model
from repro.tensor import Tensor, no_grad
from repro.nn import functional
from repro.train import (
    SGD,
    CosineAnnealingWarmRestarts,
    Trainer,
    load_checkpoint,
    save_checkpoint,
)


@pytest.fixture(scope="module")
def pipeline(tmp_path_factory):
    """Train, checkpoint, reload — shared by the tests below."""
    train = SynthSTL("train", size=32, n_per_class=30, seed=0)
    test = SynthSTL("test", size=32, n_per_class=15, seed=0)
    model = build_model("ode_botnet", profile="tiny", seed=0)
    opt = SGD(model.parameters(), lr=0.05, momentum=0.9, weight_decay=1e-4)
    trainer = Trainer(model, opt, CosineAnnealingWarmRestarts(opt, T_0=10))
    history = trainer.fit(
        DataLoader(train, batch_size=32, shuffle=True, seed=1),
        DataLoader(test, batch_size=64),
        epochs=6,
    )
    path = tmp_path_factory.mktemp("ckpt") / "model.npz"
    save_checkpoint(path, model, optimizer=opt,
                    metadata={"best": history.best()[1]})
    reloaded = build_model("ode_botnet", profile="tiny", seed=99)
    meta = load_checkpoint(path, reloaded)
    reloaded.eval()
    images, labels = next(iter(DataLoader(test, batch_size=len(test))))
    return reloaded, meta, images, labels, history


class TestTrainedPipeline:
    def test_training_reached_useful_accuracy(self, pipeline):
        _, meta, _, _, history = pipeline
        assert history.best()[1] > 0.7
        assert meta["best"] == pytest.approx(history.best()[1])

    def test_reloaded_model_predicts(self, pipeline):
        model, _, images, labels, _ = pipeline
        with no_grad():
            logits = model(Tensor(images)).data
        acc = np.mean(np.argmax(logits, axis=-1) == labels)
        assert acc > 0.7

    def test_quantised_inference_matches_float(self, pipeline):
        model, _, images, labels, _ = pipeline
        with no_grad():
            ref = model(Tensor(images)).data
        with use_quantized_mhsa(model, QFormat(32, 16), QFormat(24, 8)):
            with no_grad():
                quant = model(Tensor(images)).data
        # paper Table VIII: no degradation at 32(16)-24(8)
        assert (np.argmax(ref, -1) == np.argmax(quant, -1)).mean() > 0.98

    def test_trained_mhsa_runs_on_accelerator(self, pipeline):
        model, _, _, _, _ = pipeline
        mhsa = model.mhsa
        design = MHSADesign(
            mhsa.channels, mhsa.height, mhsa.width, heads=mhsa.heads,
            arithmetic=FIXED_DEFAULT,
        )
        acc = MHSAAccelerator(mhsa, design)
        x = np.random.default_rng(0).normal(
            size=(2, mhsa.channels, mhsa.height, mhsa.width)
        ).astype(np.float32)
        hw = acc.run(x)
        sw = functional.mhsa2d_eval(mhsa, x)
        assert np.abs(hw - sw).max() < 0.01
        assert design.resource_report().fits()
        assert acc.latency().total_ms > 0

    def test_full_quantised_network_agrees(self, pipeline):
        from repro.fixedpoint import QuantizedODENetExecutor

        model, _, images, labels, _ = pipeline
        executor = QuantizedODENetExecutor(model, QFormat(32, 16), QFormat(24, 8))
        logits = executor.run(images)
        with no_grad():
            ref = model(Tensor(images)).data
        assert (np.argmax(ref, -1) == np.argmax(logits, -1)).mean() > 0.98
