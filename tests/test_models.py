"""Tests for the five models: shapes, parameter counts, Table IV claims."""

import numpy as np
import pytest

from repro import nn
from repro.models import (
    MODELS,
    BoTNet,
    MHSABlock,
    ODENet,
    ResNet,
    ViT,
    build_model,
)
from repro.tensor import Tensor, no_grad


class TestResNet:
    def test_tiny_forward_shape(self, rng):
        m = build_model("resnet50", profile="tiny")
        out = m(Tensor(rng.normal(size=(2, 3, 32, 32)).astype(np.float32)))
        assert out.shape == (2, 10)

    def test_stage_downsampling(self, rng):
        m = ResNet(block_counts=(1, 1, 1, 1), base_width=8, input_size=32, rng=rng)
        assert m.final_fmap == 32 // 32  # /4 stem, /2 per later stage
        assert m.final_channels == 8 * 8 * 4

    def test_bottleneck_shortcut_identity_when_possible(self, rng):
        from repro.models.resnet import Bottleneck

        block = Bottleneck(64, 16, stride=1, rng=rng)
        assert isinstance(block.shortcut, nn.Identity)
        block2 = Bottleneck(64, 32, stride=2, rng=rng)
        assert not isinstance(block2.shortcut, nn.Identity)

    def test_paper_param_count_close(self):
        """Table IV: ResNet50 = 23,522,362 params (10 classes)."""
        m = build_model("resnet50", profile="paper")
        assert m.num_parameters() == pytest.approx(23_522_362, rel=0.01)

    def test_backward_through_tiny(self, rng):
        m = build_model("resnet50", profile="tiny")
        out = m(Tensor(rng.normal(size=(1, 3, 32, 32)).astype(np.float32)))
        out.sum().backward()
        grads = [p.grad is not None for p in m.parameters()]
        assert all(grads)


class TestBoTNet:
    def test_last_stage_uses_mhsa(self):
        m = build_model("botnet50", profile="tiny")
        stage4_mhsa = [x for x in m.stage4.modules() if isinstance(x, nn.MHSA2d)]
        stage3_mhsa = [x for x in m.stage3.modules() if isinstance(x, nn.MHSA2d)]
        assert len(stage4_mhsa) >= 1
        assert len(stage3_mhsa) == 0

    def test_fewer_params_than_resnet(self):
        """Table IV: BoTNet50 < ResNet50 (19.7% reduction at paper scale)."""
        r = build_model("resnet50", profile="paper").num_parameters()
        b = build_model("botnet50", profile="paper").num_parameters()
        assert b < r
        assert 1 - b / r == pytest.approx(0.197, abs=0.03)

    def test_paper_param_count_close(self):
        m = build_model("botnet50", profile="paper")
        assert m.num_parameters() == pytest.approx(18_885_962, rel=0.01)

    def test_forward_tiny(self, rng):
        m = build_model("botnet50", profile="tiny")
        out = m(Tensor(rng.normal(size=(2, 3, 32, 32)).astype(np.float32)))
        assert out.shape == (2, 10)

    def test_strided_mhsa_block_pools(self, rng):
        block = MHSABlock(32, 16, stride=2, fmap_size=8, rng=rng)
        out = block(Tensor(rng.normal(size=(1, 32, 8, 8)).astype(np.float32)))
        assert out.shape == (1, 64, 4, 4)

    def test_botnet50_mhsa_geometry_is_512_3x3(self):
        """The FPGA-accelerated configuration of Tables I-III."""
        m = build_model("botnet50", profile="paper")
        mhsas = [x for x in m.stage4.modules() if isinstance(x, nn.MHSA2d)]
        assert {a.channels for a in mhsas} == {512}
        assert mhsas[-1].height == 3


class TestODENet:
    def test_forward_tiny(self, rng):
        m = build_model("odenet", profile="tiny")
        out = m(Tensor(rng.normal(size=(2, 3, 32, 32)).astype(np.float32)))
        assert out.shape == (2, 10)

    def test_params_much_smaller_than_resnet(self):
        """Table IV: Neural ODE is ~40x smaller than ResNet50."""
        r = build_model("resnet50", profile="paper").num_parameters()
        o = build_model("odenet", profile="paper").num_parameters()
        assert o < r / 30

    def test_paper_param_count_order(self):
        m = build_model("odenet", profile="paper")
        assert m.num_parameters() == pytest.approx(599_309, rel=0.15)

    def test_invalid_input_size_raises(self):
        with pytest.raises(ValueError):
            ODENet(input_size=50)

    def test_steps_change_depth_not_params(self):
        m4 = build_model("odenet", profile="tiny", steps=4)
        m16 = build_model("odenet", profile="tiny", steps=16)
        assert m4.num_parameters() == m16.num_parameters()

    def test_mhsa_property_raises_for_conv_model(self):
        m = build_model("odenet", profile="tiny")
        with pytest.raises(AttributeError):
            _ = m.mhsa


class TestProposedModel:
    def test_forward_tiny(self, rng):
        m = build_model("ode_botnet", profile="tiny")
        out = m(Tensor(rng.normal(size=(2, 3, 32, 32)).astype(np.float32)))
        assert out.shape == (2, 10)

    def test_headline_reduction_vs_botnet(self):
        """The paper's core claim: 97.3% parameter reduction vs BoTNet50."""
        b = build_model("botnet50", profile="paper").num_parameters()
        p = build_model("ode_botnet", profile="paper").num_parameters()
        reduction = 1 - p / b
        assert reduction == pytest.approx(0.973, abs=0.01)

    def test_fewer_params_than_odenet(self):
        """Table IV ordering: proposed < Neural ODE."""
        o = build_model("odenet", profile="paper").num_parameters()
        p = build_model("ode_botnet", profile="paper").num_parameters()
        assert p < o

    def test_paper_param_count_order(self):
        m = build_model("ode_botnet", profile="paper")
        assert m.num_parameters() == pytest.approx(513_275, rel=0.15)

    def test_mhsa_geometry_is_64_6x6(self):
        """The deployed accelerator configuration (Table VII/IX)."""
        m = build_model("ode_botnet", profile="paper")
        assert m.mhsa.channels == 64
        assert (m.mhsa.height, m.mhsa.width) == (6, 6)
        assert m.mhsa.heads == 4

    def test_uses_relu_attention_and_layernorm(self):
        """Paper Sec. V-A: ReLU attention + output LayerNorm."""
        m = build_model("ode_botnet", profile="paper")
        assert m.mhsa.attention_activation == "relu"
        assert m.mhsa.norm is not None

    def test_trains_one_step(self, rng):
        from repro.train import SGD, CrossEntropyLoss

        m = build_model("ode_botnet", profile="tiny")
        x = Tensor(rng.normal(size=(4, 3, 32, 32)).astype(np.float32))
        y = np.array([0, 1, 2, 3])
        loss = CrossEntropyLoss()(m(x), y)
        loss.backward()
        SGD(m.parameters(), lr=0.01).step()


class TestViT:
    def test_forward_tiny(self, rng):
        m = build_model("vit_base", profile="tiny")
        out = m(Tensor(rng.normal(size=(2, 3, 32, 32)).astype(np.float32)))
        assert out.shape == (2, 10)

    def test_vit_base_is_largest(self):
        """Table IV ordering: ViT-Base dwarfs everything else."""
        v = build_model("vit_base", profile="paper").num_parameters()
        r = build_model("resnet50", profile="paper").num_parameters()
        assert v > 3 * r
        assert v == pytest.approx(78_218_506, rel=0.15)

    def test_patch_count(self):
        m = ViT(image_size=96, patch_size=16, dim=32, depth=1, heads=2)
        assert m.num_patches == 36

    def test_bad_patch_size_raises(self):
        with pytest.raises(ValueError):
            ViT(image_size=96, patch_size=13)

    def test_cls_token_gradient(self, rng):
        m = build_model("vit_base", profile="tiny")
        m(Tensor(rng.normal(size=(1, 3, 32, 32)).astype(np.float32))).sum().backward()
        assert m.cls_token.grad is not None
        assert m.pos_embed.grad is not None


class TestRegistry:
    def test_all_models_buildable_tiny(self):
        for name in MODELS:
            m = build_model(name, profile="tiny")
            assert m.num_parameters() > 0

    def test_unknown_model_raises(self):
        with pytest.raises(ValueError):
            build_model("alexnet")

    def test_unknown_profile_raises(self):
        with pytest.raises(ValueError):
            build_model("resnet50", profile="huge")

    def test_override_forwarding(self):
        m = build_model("odenet", profile="tiny", steps=3)
        assert m.block1.steps == 3

    def test_table4_full_ordering(self):
        """Table IV: ViT > ResNet50 > BoTNet50 >> ODENet > proposed."""
        params = {
            name: build_model(name, profile="paper").num_parameters()
            for name in MODELS
        }
        assert (
            params["vit_base"]
            > params["resnet50"]
            > params["botnet50"]
            > params["odenet"]
            > params["ode_botnet"]
        )

    def test_deterministic_by_seed(self, rng):
        m1 = build_model("ode_botnet", profile="tiny", seed=42)
        m2 = build_model("ode_botnet", profile="tiny", seed=42)
        x = Tensor(rng.normal(size=(1, 3, 32, 32)).astype(np.float32))
        with no_grad():
            np.testing.assert_array_equal(m1(x).data, m2(x).data)
