"""Tests for checkpoint save/load."""

import numpy as np
import pytest

from repro import nn
from repro.models import build_model
from repro.tensor import Tensor, no_grad
from repro.train import SGD, load_checkpoint, save_checkpoint


class TestCheckpoint:
    def test_model_roundtrip(self, tmp_path, rng):
        m1 = build_model("ode_botnet", profile="tiny", seed=1)
        m2 = build_model("ode_botnet", profile="tiny", seed=2)
        x = Tensor(rng.normal(size=(1, 3, 32, 32)).astype(np.float32))
        path = tmp_path / "ckpt.npz"
        save_checkpoint(path, m1)
        load_checkpoint(path, m2)
        with no_grad():
            np.testing.assert_array_equal(m1.eval()(x).data, m2.eval()(x).data)

    def test_metadata_roundtrip(self, tmp_path, rng):
        m = nn.Linear(3, 2, rng=rng)
        path = tmp_path / "ckpt.npz"
        save_checkpoint(path, m, metadata={"epoch": 42, "best_acc": 0.81})
        meta = load_checkpoint(path, m)
        assert meta["epoch"] == 42
        assert meta["best_acc"] == pytest.approx(0.81)

    def test_optimizer_momentum_restored(self, tmp_path, rng):
        m = nn.Linear(4, 2, rng=rng)
        opt = SGD(m.parameters(), lr=0.1, momentum=0.9)
        # build momentum state
        out = m(Tensor(rng.normal(size=(5, 4)).astype(np.float32)))
        out.sum().backward()
        opt.step()
        path = tmp_path / "ckpt.npz"
        save_checkpoint(path, m, optimizer=opt, metadata={"epoch": 1})

        m2 = nn.Linear(4, 2, rng=np.random.default_rng(5))
        opt2 = SGD(m2.parameters(), lr=0.5, momentum=0.9)
        load_checkpoint(path, m2, optimizer=opt2)
        assert opt2.lr == pytest.approx(0.1)
        for v1, v2 in zip(opt._velocity, opt2._velocity):
            if v1 is None:
                assert v2 is None
            else:
                np.testing.assert_array_equal(v1, v2)

    def test_bn_running_stats_restored(self, tmp_path, rng):
        bn1 = nn.BatchNorm2d(3)
        bn1(Tensor(rng.normal(size=(8, 3, 4, 4)).astype(np.float32)))
        path = tmp_path / "bn.npz"
        save_checkpoint(path, bn1)
        bn2 = nn.BatchNorm2d(3)
        load_checkpoint(path, bn2)
        np.testing.assert_allclose(bn2.running_mean, bn1.running_mean)
        np.testing.assert_allclose(bn2.running_var, bn1.running_var)

    def test_resume_training_trajectory(self, tmp_path, rng):
        """Save mid-training, reload into fresh objects, and verify the
        continued trajectory matches an uninterrupted run."""

        def make():
            m = nn.Sequential(nn.Flatten(), nn.Linear(8, 2, rng=np.random.default_rng(0)))
            return m, SGD(m.parameters(), lr=0.1, momentum=0.9, weight_decay=0.0)

        x = Tensor(rng.normal(size=(4, 2, 2, 2)).astype(np.float32))

        def step(m, opt):
            opt.zero_grad()
            m(x).sum().backward()
            opt.step()

        # uninterrupted: 4 steps
        m_ref, opt_ref = make()
        for _ in range(4):
            step(m_ref, opt_ref)

        # interrupted after 2 steps
        m_a, opt_a = make()
        for _ in range(2):
            step(m_a, opt_a)
        path = tmp_path / "mid.npz"
        save_checkpoint(path, m_a, optimizer=opt_a)
        m_b, opt_b = make()
        load_checkpoint(path, m_b, optimizer=opt_b)
        for _ in range(2):
            step(m_b, opt_b)

        for p_ref, p_b in zip(m_ref.parameters(), m_b.parameters()):
            np.testing.assert_allclose(p_b.data, p_ref.data, rtol=1e-5)
