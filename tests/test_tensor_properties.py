"""Property-based tests (hypothesis) on the autograd engine.

Invariants checked:
* backward of linear ops equals the analytic adjoint for arbitrary shapes;
* softmax rows always form a probability distribution;
* gradients of a sum through any broadcast pattern are the broadcast
  multiplicities;
* conv2d and matmul agree with dot-product semantics on random shapes.
"""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra.numpy import arrays, array_shapes

from repro.tensor import Tensor

floats = st.floats(-10, 10, allow_nan=False, width=32)


def _arr(shape_strategy=array_shapes(min_dims=1, max_dims=3, min_side=1, max_side=5)):
    return shape_strategy.flatmap(
        lambda s: arrays(np.float64, s, elements=st.floats(-10, 10, allow_nan=False))
    )


@settings(max_examples=40, deadline=None)
@given(_arr())
def test_sum_gradient_is_ones(a):
    t = Tensor(a, requires_grad=True, dtype=np.float64)
    t.sum().backward()
    np.testing.assert_array_equal(t.grad, np.ones_like(a))


@settings(max_examples=40, deadline=None)
@given(_arr(), st.floats(-5, 5, allow_nan=False))
def test_scalar_mul_gradient(a, c):
    t = Tensor(a, requires_grad=True, dtype=np.float64)
    (t * c).sum().backward()
    np.testing.assert_allclose(t.grad, np.full_like(a, c), rtol=1e-10)


@settings(max_examples=40, deadline=None)
@given(
    st.integers(1, 4), st.integers(1, 4), st.integers(1, 4)
)
def test_matmul_matches_numpy(m, k, n):
    rng = np.random.default_rng(m * 100 + k * 10 + n)
    a, b = rng.normal(size=(m, k)), rng.normal(size=(k, n))
    out = Tensor(a, dtype=np.float64) @ Tensor(b, dtype=np.float64)
    np.testing.assert_allclose(out.data, a @ b, rtol=1e-10)


@settings(max_examples=40, deadline=None)
@given(_arr(array_shapes(min_dims=2, max_dims=2, min_side=1, max_side=6)))
def test_softmax_is_distribution(a):
    out = Tensor(a, dtype=np.float64).softmax(axis=-1)
    assert (out.data >= 0).all()
    np.testing.assert_allclose(out.data.sum(axis=-1), 1.0, rtol=1e-8)


@settings(max_examples=40, deadline=None)
@given(_arr(array_shapes(min_dims=2, max_dims=2, min_side=1, max_side=6)))
def test_softmax_invariant_to_shift(a):
    s1 = Tensor(a, dtype=np.float64).softmax(axis=-1).data
    s2 = Tensor(a + 7.0, dtype=np.float64).softmax(axis=-1).data
    np.testing.assert_allclose(s1, s2, rtol=1e-8, atol=1e-12)


@settings(max_examples=30, deadline=None)
@given(st.integers(1, 4), st.integers(1, 4))
def test_broadcast_add_gradient_counts(rows, cols):
    """Gradient of a broadcast operand equals its multiplicity."""
    a = Tensor(np.zeros((rows, cols)), requires_grad=True, dtype=np.float64)
    b = Tensor(np.zeros((cols,)), requires_grad=True, dtype=np.float64)
    (a + b).sum().backward()
    np.testing.assert_array_equal(a.grad, np.ones((rows, cols)))
    np.testing.assert_array_equal(b.grad, np.full((cols,), rows))


@settings(max_examples=30, deadline=None)
@given(_arr())
def test_relu_idempotent(a):
    t = Tensor(a, dtype=np.float64)
    once = t.relu().data
    twice = t.relu().relu().data
    np.testing.assert_array_equal(once, twice)


@settings(max_examples=30, deadline=None)
@given(_arr())
def test_exp_log_softplus_positive(a):
    out = Tensor(a, dtype=np.float64).exp()
    assert (out.data > 0).all()


@settings(max_examples=20, deadline=None)
@given(
    st.integers(1, 3), st.integers(1, 3), st.integers(3, 7), st.integers(3, 7),
    st.integers(1, 3),
)
def test_conv1x1_equals_einsum(n, c, h, w, f):
    rng = np.random.default_rng(n + c * 10 + h * 100)
    x = rng.normal(size=(n, c, h, w))
    weight = rng.normal(size=(f, c, 1, 1))
    out = Tensor(x, dtype=np.float64).conv2d(Tensor(weight, dtype=np.float64))
    ref = np.einsum("nchw,fc->nfhw", x, weight[:, :, 0, 0])
    np.testing.assert_allclose(out.data, ref, rtol=1e-8)


@settings(max_examples=20, deadline=None)
@given(st.integers(2, 6), st.integers(2, 6))
def test_transpose_involution(m, n):
    rng = np.random.default_rng(m * 10 + n)
    a = rng.normal(size=(m, n))
    t = Tensor(a, requires_grad=True, dtype=np.float64)
    t.T.T.sum().backward()
    np.testing.assert_array_equal(t.grad, np.ones((m, n)))
