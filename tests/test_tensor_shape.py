"""Unit tests for shape ops: reshape/transpose/indexing/pad/concat."""

import numpy as np
import pytest

from repro.tensor import Tensor, cat, gradcheck, stack


class TestReshape:
    def test_reshape_roundtrip(self, rng):
        a = rng.normal(size=(2, 3, 4))
        out = Tensor(a).reshape(6, 4).reshape(2, 3, 4)
        np.testing.assert_allclose(out.data, a, rtol=1e-6)

    def test_reshape_minus_one(self, rng):
        out = Tensor(rng.normal(size=(2, 3, 4))).reshape(2, -1)
        assert out.shape == (2, 12)

    def test_reshape_grad(self, rng):
        gradcheck(lambda x: x.reshape(-1) * 2.0, [rng.normal(size=(3, 4))])

    def test_flatten(self, rng):
        out = Tensor(rng.normal(size=(2, 3, 4, 5))).flatten(1)
        assert out.shape == (2, 60)


class TestTranspose:
    def test_default_reverses(self, rng):
        out = Tensor(rng.normal(size=(2, 3, 4))).transpose()
        assert out.shape == (4, 3, 2)

    def test_permute_grad(self, rng):
        gradcheck(lambda x: x.transpose(1, 2, 0), [rng.normal(size=(2, 3, 4))])

    def test_T_property(self, rng):
        a = rng.normal(size=(3, 5))
        np.testing.assert_allclose(Tensor(a).T.data, a.T, rtol=1e-6)

    def test_swapaxes(self, rng):
        a = rng.normal(size=(2, 3, 4))
        np.testing.assert_allclose(
            Tensor(a).swapaxes(1, 2).data, np.swapaxes(a, 1, 2), rtol=1e-6
        )


class TestIndexing:
    def test_basic_slice_grad(self, rng):
        gradcheck(lambda x: x[1:, ::2], [rng.normal(size=(4, 6))])

    def test_int_index(self, rng):
        a = rng.normal(size=(4, 3))
        np.testing.assert_allclose(Tensor(a)[2].data, a[2], rtol=1e-6)

    def test_advanced_index_accumulates(self):
        t = Tensor(np.zeros(3), requires_grad=True)
        idx = np.array([0, 0, 2])
        t[idx].sum().backward()
        np.testing.assert_array_equal(t.grad, [2.0, 0.0, 1.0])

    def test_fancy_2d_index(self, rng):
        a = rng.normal(size=(5, 4))
        rows = np.array([0, 2, 4])
        cols = np.array([1, 1, 3])
        t = Tensor(a, requires_grad=True)
        t[rows, cols].sum().backward()
        expected = np.zeros((5, 4))
        np.add.at(expected, (rows, cols), 1.0)
        np.testing.assert_array_equal(t.grad, expected)


class TestPad:
    def test_pad_values(self, rng):
        a = rng.normal(size=(2, 3))
        out = Tensor(a).pad([(1, 1), (0, 2)])
        assert out.shape == (4, 5)
        np.testing.assert_allclose(out.data[1:3, :3], a, rtol=1e-6)
        assert out.data[0].sum() == 0

    def test_pad_grad(self, rng):
        gradcheck(lambda x: x.pad([(1, 0), (2, 1)]), [rng.normal(size=(2, 3))])


class TestConcatStack:
    def test_cat_values(self, rng):
        a, b = rng.normal(size=(2, 3)), rng.normal(size=(4, 3))
        out = cat([Tensor(a), Tensor(b)], axis=0)
        np.testing.assert_allclose(out.data, np.concatenate([a, b]), rtol=1e-6)

    def test_cat_grad_splits(self, rng):
        a = Tensor(rng.normal(size=(2, 2)), requires_grad=True)
        b = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        cat([a, b], axis=1).sum().backward()
        assert a.grad.shape == (2, 2)
        assert b.grad.shape == (2, 3)
        np.testing.assert_array_equal(a.grad, np.ones((2, 2)))

    def test_stack(self, rng):
        a, b = rng.normal(size=(3,)), rng.normal(size=(3,))
        out = stack([Tensor(a), Tensor(b)], axis=0)
        np.testing.assert_allclose(out.data, np.stack([a, b]), rtol=1e-6)

    def test_broadcast_to_grad(self, rng):
        gradcheck(lambda x: x.broadcast_to((4, 3)), [rng.normal(size=(1, 3))])

    def test_expand_squeeze(self, rng):
        a = rng.normal(size=(2, 3))
        t = Tensor(a).expand_dims(1)
        assert t.shape == (2, 1, 3)
        assert t.squeeze(1).shape == (2, 3)


class TestMatmulShapes:
    def test_2d(self, rng):
        a, b = rng.normal(size=(3, 4)), rng.normal(size=(4, 5))
        np.testing.assert_allclose((Tensor(a) @ Tensor(b)).data, a @ b, rtol=1e-6)

    def test_batched_grad(self, rng):
        gradcheck(
            lambda x, y: x @ y,
            [rng.normal(size=(2, 3, 4)), rng.normal(size=(2, 4, 5))],
        )

    def test_broadcast_batch_grad(self, rng):
        # (B, k, N, D) @ (k, D, N): batch-dim broadcast as used by MHSA
        gradcheck(
            lambda x, y: x @ y,
            [rng.normal(size=(2, 3, 4, 5)), rng.normal(size=(3, 5, 4))],
        )

    def test_vector_matrix(self, rng):
        a, b = rng.normal(size=(4,)), rng.normal(size=(4, 3))
        gradcheck(lambda x, y: x @ y, [a, b])

    def test_matrix_vector(self, rng):
        a, b = rng.normal(size=(3, 4)), rng.normal(size=(4,))
        gradcheck(lambda x, y: x @ y, [a, b])

    def test_vector_vector(self, rng):
        a, b = rng.normal(size=(4,)), rng.normal(size=(4,))
        out = Tensor(a) @ Tensor(b)
        assert out.data == pytest.approx(a @ b)
