"""Codebase-quality gates.

These meta-tests enforce the project conventions (CONTRIBUTING.md):
no global numpy RNG in library code, docstrings on every public module
and exported symbol, no stray debug markers, and end-to-end determinism
of training under a fixed seed.
"""

import importlib
import inspect
import os
import pkgutil
import re

import numpy as np
import pytest

import repro

SRC = os.path.dirname(repro.__file__)


def _all_modules():
    for info in pkgutil.walk_packages([SRC], prefix="repro."):
        if "__main__" in info.name:
            continue
        yield info.name


class TestRngDiscipline:
    def test_no_global_numpy_rng(self):
        """Library code must use explicit Generators, never np.random.<dist>.

        Allowed: np.random.default_rng, np.random.Generator,
        np.random.SeedSequence (all stateless constructors).
        """
        pattern = re.compile(r"np\.random\.(?!default_rng|Generator|SeedSequence)\w+")
        offenders = []
        for root, _dirs, files in os.walk(SRC):
            for fname in files:
                if not fname.endswith(".py"):
                    continue
                path = os.path.join(root, fname)
                for lineno, line in enumerate(open(path), 1):
                    if pattern.search(line):
                        offenders.append(f"{path}:{lineno}: {line.strip()}")
        assert not offenders, "\n".join(offenders)

    def test_no_debug_markers(self):
        markers = re.compile(r"\b(XXX|FIXME|breakpoint\(\)|pdb\.set_trace)\b")
        offenders = []
        for root, _dirs, files in os.walk(SRC):
            for fname in files:
                if fname.endswith(".py"):
                    text = open(os.path.join(root, fname)).read()
                    if markers.search(text):
                        offenders.append(os.path.join(root, fname))
        assert not offenders, offenders


class TestDocstrings:
    def test_every_module_has_docstring(self):
        missing = []
        for name in _all_modules():
            mod = importlib.import_module(name)
            if not (mod.__doc__ or "").strip():
                missing.append(name)
        assert not missing, missing

    def test_every_exported_symbol_documented(self):
        missing = []
        for name in _all_modules():
            mod = importlib.import_module(name)
            for sym in getattr(mod, "__all__", []):
                obj = getattr(mod, sym)
                if inspect.isclass(obj) or inspect.isfunction(obj):
                    if not (inspect.getdoc(obj) or "").strip():
                        missing.append(f"{name}.{sym}")
        assert not missing, missing


class TestDeterminism:
    def _train_once(self):
        from repro.data import DataLoader, SynthSTL
        from repro.models import build_model
        from repro.train import SGD, Trainer

        model = build_model("ode_botnet", profile="tiny", seed=11)
        train = SynthSTL("train", size=32, n_per_class=10, seed=3)
        trainer = Trainer(model, SGD(model.parameters(), lr=0.05))
        hist = trainer.fit(
            DataLoader(train, batch_size=20, shuffle=True, seed=5), epochs=2
        )
        return hist.train_loss, [p.data.copy() for p in model.parameters()]

    def test_training_is_bitwise_reproducible(self):
        loss_a, params_a = self._train_once()
        loss_b, params_b = self._train_once()
        assert loss_a == loss_b
        for a, b in zip(params_a, params_b):
            np.testing.assert_array_equal(a, b)


class TestKernelSeam:
    """The kernel layer owns every hot-path array computation.

    Grep-level gates: the im2col conv einsum, the conv output-size
    formula and the strided-patch extractor may live only under
    ``repro/kernels`` — every other layer must route through the
    dispatch seam instead of keeping a private copy.
    """

    def _source_files(self):
        for root, _dirs, files in os.walk(SRC):
            for fname in files:
                if fname.endswith(".py"):
                    yield os.path.join(root, fname)

    def _offenders(self, pattern, allowed):
        pat = re.compile(pattern)
        hits = []
        for path in self._source_files():
            rel = os.path.relpath(path, SRC).replace(os.sep, "/")
            if any(rel.startswith(a) for a in allowed):
                continue
            for lineno, line in enumerate(open(path), 1):
                if pat.search(line):
                    hits.append(f"{rel}:{lineno}: {line.strip()}")
        return hits

    def test_conv_einsum_only_in_kernels(self):
        offenders = self._offenders(r"ngcxykl", allowed=("kernels/",))
        assert not offenders, "\n".join(offenders)

    def test_out_size_formula_only_in_kernels_shapes(self):
        offenders = self._offenders(
            r"2 \* p[hw] - k[hw]\) // s[hw] \+ 1",
            allowed=("kernels/shapes.py",),
        )
        assert not offenders, "\n".join(offenders)

    def test_strided_patches_defined_only_in_kernels_shapes(self):
        offenders = self._offenders(
            r"def as_strided_patches|np\.lib\.stride_tricks\.as_strided",
            allowed=("kernels/shapes.py",),
        )
        assert not offenders, "\n".join(offenders)

    def test_consumer_layers_import_the_seam(self):
        """All four consumer layers route through repro.kernels."""
        consumers = (
            "tensor/ops_matmul.py",
            "tensor/ops_conv.py",
            "nn/functional.py",
            "fixedpoint/ops.py",
            "fixedpoint/quantized_layers.py",
            "runtime/engine.py",
        )
        missing = []
        for rel in consumers:
            text = open(os.path.join(SRC, rel)).read()
            if "from .. import kernels" not in text:
                missing.append(rel)
        assert not missing, missing
