"""Codebase-quality gates.

These meta-tests enforce the project conventions (CONTRIBUTING.md):
no global numpy RNG in library code, docstrings on every public module
and exported symbol, no stray debug markers, a single owner for every
kernel-seam computation, and end-to-end determinism of training under a
fixed seed.

Each static gate is a thin wrapper over the corresponding
:mod:`repro.lint` rule — the linter is the single implementation of the
invariant, so ``python -m repro.lint`` and pytest can never disagree.
See docs/LINTING.md for the rule catalogue.
"""

import os

import numpy as np

import repro
from repro.lint import Severity, lint_paths

SRC = os.path.dirname(repro.__file__)


def _findings(*rule_ids):
    """Run the named lint rules over the shipped library tree."""
    diags = lint_paths([SRC], select=list(rule_ids))
    return [d.format() for d in diags]


class TestRngDiscipline:
    def test_no_global_numpy_rng(self):
        """Library code must use explicit Generators, never np.random.<dist>.

        Allowed: np.random.default_rng, np.random.Generator,
        np.random.SeedSequence (all stateless constructors). (RNG001)
        """
        assert not _findings("RNG001")

    def test_no_debug_markers(self):
        """No XXX/FIXME comments or debugger hooks in library code. (DBG001)"""
        assert not _findings("DBG001")


class TestDocstrings:
    def test_every_module_has_docstring(self):
        """Every library module carries a module docstring. (DOC001)"""
        assert not _findings("DOC001")

    def test_every_exported_symbol_documented(self):
        """Every ``__all__`` export defined in-module is documented. (DOC002)"""
        assert not _findings("DOC002")


class TestDeterminism:
    def _train_once(self):
        from repro.data import DataLoader, SynthSTL
        from repro.models import build_model
        from repro.train import SGD, Trainer

        model = build_model("ode_botnet", profile="tiny", seed=11)
        train = SynthSTL("train", size=32, n_per_class=10, seed=3)
        trainer = Trainer(model, SGD(model.parameters(), lr=0.05))
        hist = trainer.fit(
            DataLoader(train, batch_size=20, shuffle=True, seed=5), epochs=2
        )
        return hist.train_loss, [p.data.copy() for p in model.parameters()]

    def test_training_is_bitwise_reproducible(self):
        loss_a, params_a = self._train_once()
        loss_b, params_b = self._train_once()
        assert loss_a == loss_b
        for a, b in zip(params_a, params_b):
            np.testing.assert_array_equal(a, b)


class TestKernelSeam:
    """The kernel layer owns every hot-path array computation.

    The im2col conv contraction, the conv output-size formula and the
    strided-patch extractor may live only under ``repro/kernels`` —
    every other layer must route through the dispatch seam instead of
    keeping a private copy.
    """

    def test_raw_contractions_only_in_kernels(self):
        """matmul/einsum/dot and friends route through the seam. (HOT001)"""
        assert not _findings("HOT001")

    def test_out_size_formula_only_in_kernels_shapes(self):
        """The ``(x + 2p - k) // s + 1`` formula has one owner. (SEAM002)"""
        assert not _findings("SEAM002")

    def test_strided_patches_defined_only_in_kernels_shapes(self):
        """``as_strided`` window tricks live in kernels/shapes.py. (SEAM003)"""
        assert not _findings("SEAM003")

    def test_consumer_layers_import_the_seam(self):
        """All kernel-seam consumer layers import repro.kernels. (SEAM004)"""
        assert not _findings("SEAM004")


class TestLintClean:
    def test_shipped_tree_lints_clean(self):
        """The shipped library has zero error-severity lint findings —
        the same gate CI applies via ``python -m repro.lint src/repro``."""
        errors = [
            d.format()
            for d in lint_paths([SRC])
            if d.severity >= Severity.ERROR
        ]
        assert not errors, "\n".join(errors)
