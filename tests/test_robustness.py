"""Tests for robustness / loss-flatness analysis."""

import numpy as np
import pytest

from repro.data import DataLoader, SynthSTL
from repro.experiments.robustness import (
    loss_flatness,
    noise_robustness_curve,
    occlusion_robustness_curve,
)


@pytest.fixture(scope="module")
def trained_and_data():
    from repro.experiments.quantization import trained_proposed_model

    model = trained_proposed_model(profile="tiny", epochs=5, n_train_per_class=30)
    test = SynthSTL("test", size=32, n_per_class=15, seed=0)
    images, labels = next(iter(DataLoader(test, batch_size=len(test))))
    return model, images, labels


class TestNoiseRobustness:
    def test_clean_accuracy_first(self, trained_and_data):
        model, images, labels = trained_and_data
        rows = noise_robustness_curve(model, images, labels, sigmas=(0.0, 0.3))
        assert rows[0]["sigma"] == 0.0
        assert rows[0]["accuracy"] > 50

    def test_heavy_noise_hurts(self, trained_and_data):
        model, images, labels = trained_and_data
        rows = noise_robustness_curve(
            model, images, labels, sigmas=(0.0, 1.0), seed=3
        )
        assert rows[1]["accuracy"] < rows[0]["accuracy"]

    def test_deterministic_given_seed(self, trained_and_data):
        model, images, labels = trained_and_data
        a = noise_robustness_curve(model, images, labels, sigmas=(0.2,), seed=7)
        b = noise_robustness_curve(model, images, labels, sigmas=(0.2,), seed=7)
        assert a == b


class TestOcclusionRobustness:
    def test_zero_fraction_is_clean(self, trained_and_data):
        model, images, labels = trained_and_data
        rows = occlusion_robustness_curve(model, images, labels, fractions=(0.0,))
        clean = noise_robustness_curve(model, images, labels, sigmas=(0.0,))
        assert rows[0]["accuracy"] == clean[0]["accuracy"]

    def test_full_occlusion_near_chance(self, trained_and_data):
        model, images, labels = trained_and_data
        rows = occlusion_robustness_curve(
            model, images, labels, fractions=(1.0,)
        )
        assert rows[0]["accuracy"] < 40  # 10-class chance is 10%

    def test_input_not_mutated(self, trained_and_data):
        model, images, labels = trained_and_data
        before = images.copy()
        occlusion_robustness_curve(model, images, labels, fractions=(0.3,))
        np.testing.assert_array_equal(images, before)


class TestLossFlatness:
    def test_zero_epsilon_is_base_loss(self, trained_and_data):
        model, images, labels = trained_and_data
        rows = loss_flatness(model, images, labels, epsilons=(0.0,))
        assert rows[0]["loss"] > 0

    def test_loss_grows_with_perturbation(self, trained_and_data):
        model, images, labels = trained_and_data
        rows = loss_flatness(
            model, images, labels, epsilons=(0.0, 0.5), n_directions=3
        )
        assert rows[1]["loss"] > rows[0]["loss"]

    def test_parameters_restored(self, trained_and_data):
        model, images, labels = trained_and_data
        before = [p.data.copy() for p in model.parameters()]
        loss_flatness(model, images, labels, epsilons=(0.1,), n_directions=2)
        for p, b in zip(model.parameters(), before):
            np.testing.assert_array_equal(p.data, b)
