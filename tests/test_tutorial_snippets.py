"""Execute the python blocks of docs/TUTORIAL.md cumulatively."""

import os
import re


def test_tutorial_blocks_run():
    path = os.path.join(os.path.dirname(__file__), "..", "docs", "TUTORIAL.md")
    blocks = re.findall(r"```python\n(.*?)```", open(path).read(), flags=re.DOTALL)
    assert len(blocks) >= 7
    namespace = {}
    for index, block in enumerate(blocks):
        exec(compile(block, f"TUTORIAL block {index}", "exec"), namespace)
