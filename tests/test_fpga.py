"""Tests for the FPGA simulator: cycles, resources, DMA, power, board."""

import numpy as np
import pytest

from repro.experiments.designs import (
    FIXED_DEFAULT,
    FLOAT32,
    botnet_mhsa_design,
    botnet_mhsa_module,
    proposed_mhsa_design,
    proposed_mhsa_module,
)
from repro.fixedpoint import QFormat
from repro.fpga import (
    Arithmetic,
    Buffer,
    BufferPlan,
    LoopNest,
    MHSAAccelerator,
    MHSADesign,
    ZCU102,
    ZCU104,
    ZynqBoard,
    bram_blocks,
    dma_cycles,
    ip_power_w,
    matmul_nest,
)
from repro.fpga.axi import AxiPort
from repro.fpga.buffers import mhsa_buffer_plan
from repro.fpga.power import board_power_w, energy_efficiency
from repro.nn import functional


class TestDevice:
    def test_zcu104_inventory_matches_paper(self):
        assert ZCU104.bram_18k == 624
        assert ZCU104.dsp == 1728
        assert ZCU104.ff == 460_800
        assert ZCU104.lut == 230_400

    def test_clock(self):
        assert ZCU104.clock_ns == pytest.approx(5.0)

    def test_zcu102_larger(self):
        assert ZCU102.bram_18k > ZCU104.bram_18k


class TestLoopNest:
    def test_basic_cycles(self):
        nest = LoopNest(trip=1000, ii=2, unroll=1, depth=4)
        assert nest.cycles() == 2004

    def test_unroll_divides_issues(self):
        serial = LoopNest(trip=1024, ii=1, unroll=1, depth=0).cycles()
        par = LoopNest(trip=1024, ii=1, unroll=128, depth=0).cycles()
        assert serial / par == 128

    def test_ceil_on_partial_unroll(self):
        nest = LoopNest(trip=100, ii=1, unroll=64, depth=0)
        assert nest.cycles() == 2

    def test_zero_trip(self):
        assert LoopNest(trip=0).cycles() == 0

    def test_matmul_nest_trip(self):
        assert matmul_nest(3, 4, 5).trip == 60


class TestBram:
    def test_small_buffer_one_block(self):
        assert bram_blocks(100) == 1

    def test_exact_block(self):
        assert bram_blocks(18 * 1024) == 1
        assert bram_blocks(18 * 1024 + 1) == 2

    def test_partition_overhead(self):
        """Partitioning rounds per bank: 64 banks of tiny buffers cost
        64 blocks even when the payload fits one block."""
        assert bram_blocks(1000, partition=64) == 64

    def test_weight_buffer_512ch_24bit(self):
        """W (512x512x24b) partitioned by 64 = 6 blocks x 64 banks."""
        assert bram_blocks(512 * 512 * 24, partition=64) == 384

    def test_invalid_partition(self):
        with pytest.raises(ValueError):
            bram_blocks(100, partition=0)


class TestBufferPlan:
    def test_naive_has_7_main_buffers(self):
        plan = mhsa_buffer_plan(9, 512, 4, 32, 24, shared_weight_buffer=False)
        names = {b.name for b in plan.buffers}
        assert {"W_q", "W_k", "W_v", "X", "Q", "K", "V"} <= names

    def test_shared_has_5_main_buffers(self):
        plan = mhsa_buffer_plan(9, 512, 4, 32, 24, shared_weight_buffer=True)
        names = {b.name for b in plan.buffers}
        assert "W_shared" in names
        assert "W_q" not in names

    def test_shared_saves_two_weight_buffers(self):
        naive = mhsa_buffer_plan(9, 512, 4, 32, 24, shared_weight_buffer=False)
        shared = mhsa_buffer_plan(9, 512, 4, 32, 24, shared_weight_buffer=True)
        w = Buffer("w", 512 * 512 * 24, 64).bram()
        assert naive.total_bram() - shared.total_bram() == 2 * w


class TestMHSADesignCycles:
    def test_table3_totals_within_one_percent(self):
        """Our schedule model must reproduce the paper's Table III."""
        d = botnet_mhsa_design(FIXED_DEFAULT)
        assert d.total_cycles(parallel=False) == pytest.approx(121_866_093, rel=0.01)
        assert d.total_cycles(parallel=True) == pytest.approx(2_337_954, rel=0.01)

    def test_projection_speedup_about_127x(self):
        d = botnet_mhsa_design(FIXED_DEFAULT)
        orig = d.stage_cycles(parallel=False)["XW^q, XW^k, XW^v (each)"]
        par = d.stage_cycles(parallel=True)["XW^q, XW^k, XW^v (each)"]
        assert orig / par == pytest.approx(127.08, rel=0.01)

    def test_overall_speedup_about_52x(self):
        d = botnet_mhsa_design(FIXED_DEFAULT)
        assert d.total_cycles(False) / d.total_cycles(True) == pytest.approx(
            52, rel=0.03
        )

    def test_float_slower_than_fixed(self):
        fx = botnet_mhsa_design(FIXED_DEFAULT).total_cycles()
        fl = botnet_mhsa_design(FLOAT32).total_cycles()
        assert fl > 1.5 * fx

    def test_smaller_config_much_faster(self):
        big = botnet_mhsa_design(FIXED_DEFAULT).total_cycles()
        small = proposed_mhsa_design(FIXED_DEFAULT).total_cycles()
        assert small < big

    def test_relative_pos_stage_optional(self):
        with_r = MHSADesign(64, 6, 6, arithmetic=FIXED_DEFAULT, use_relative_pos=True)
        without = MHSADesign(64, 6, 6, arithmetic=FIXED_DEFAULT, use_relative_pos=False)
        assert "QR^T" in with_r.stage_cycles()
        assert "QR^T" not in without.stage_cycles()
        assert without.total_cycles() < with_r.total_cycles()

    def test_invalid_heads_raises(self):
        with pytest.raises(ValueError):
            MHSADesign(10, 3, 3, heads=3)


class TestMHSADesignResources:
    def test_table1_shape_fixed_cuts_dsp_ff_lut(self):
        """Table I: fixed-point slashes DSP (~5x) and FF (~3x)."""
        fl = botnet_mhsa_design(FLOAT32, shared_weight_buffer=False).resource_report()
        fx = botnet_mhsa_design(FIXED_DEFAULT, shared_weight_buffer=False).resource_report()
        assert fx.dsp < fl.dsp / 4
        assert fx.ff < fl.ff / 2
        assert fx.lut < fl.lut
        assert fx.bram < fl.bram

    def test_table2_shape_shared_buffer_fits_device(self):
        """Table II: naive overflows BRAM (>100%), shared fits (<100%)."""
        naive = botnet_mhsa_design(FIXED_DEFAULT, shared_weight_buffer=False)
        shared = botnet_mhsa_design(FIXED_DEFAULT, shared_weight_buffer=True)
        assert not naive.resource_report().fits()
        assert shared.resource_report().fits()

    def test_table7_all_deployed_builds_fit(self):
        for design in (
            botnet_mhsa_design(FLOAT32),
            botnet_mhsa_design(FIXED_DEFAULT),
            proposed_mhsa_design(FLOAT32),
            proposed_mhsa_design(FIXED_DEFAULT),
        ):
            assert design.resource_report().fits(), design.describe()

    def test_paper_bram_within_15_percent(self):
        ours = botnet_mhsa_design(FIXED_DEFAULT).resource_report().bram
        assert ours == pytest.approx(559, rel=0.15)

    def test_dsp_lane_model(self):
        """137 DSP fixed vs 680 float at unroll 128 (Table I)."""
        fx = botnet_mhsa_design(FIXED_DEFAULT).resource_report().dsp
        fl = botnet_mhsa_design(FLOAT32).resource_report().dsp
        assert fx == pytest.approx(137, rel=0.05)
        assert fl == pytest.approx(680, rel=0.1)

    def test_utilization_row_format(self):
        row = botnet_mhsa_design(FIXED_DEFAULT).resource_report().row()
        assert "%" in row


class TestAxi:
    def test_beats_for_narrow_words(self):
        port = AxiPort(width_bits=32)
        assert port.beats(100, 24) == 100  # one beat per sub-word value

    def test_beats_for_wide_words(self):
        port = AxiPort(width_bits=32)
        assert port.beats(100, 64) == 200

    def test_dma_totals(self):
        d = botnet_mhsa_design(FIXED_DEFAULT)
        dma = dma_cycles(d)
        assert dma["weights"] > dma["input"]
        assert dma["total"] == (
            dma["weights"] + dma["rel_pos"] + dma["input"] + dma["output"]
        )


class TestPower:
    def test_paper_operating_points(self):
        """Sec. VI-B7: IP fixed ~0.87 W, float ~3.98 W."""
        fx = ip_power_w(botnet_mhsa_design(FIXED_DEFAULT).resource_report(), 1.0)
        fl = ip_power_w(botnet_mhsa_design(FLOAT32).resource_report(), 2.0)
        assert fx == pytest.approx(0.866, rel=0.15)
        assert fl == pytest.approx(3.977, rel=0.15)

    def test_board_power_additive(self):
        assert board_power_w(1.0) == pytest.approx(3.647)

    def test_energy_efficiency_about_2x(self):
        board = ZynqBoard()
        d = botnet_mhsa_design(FIXED_DEFAULT)
        acc = MHSAAccelerator(botnet_mhsa_module(), d)
        eff = board.energy_efficiency(d, acc.latency().total_ms)
        assert eff == pytest.approx(1.98, rel=0.1)


class TestAccelerator:
    def test_geometry_mismatch_raises(self):
        with pytest.raises(ValueError):
            MHSAAccelerator(proposed_mhsa_module(), botnet_mhsa_design(FIXED_DEFAULT))

    def test_float_run_matches_software_reference(self, rng):
        m = proposed_mhsa_module()
        acc = MHSAAccelerator(m, proposed_mhsa_design(FLOAT32))
        x = rng.normal(size=(1, 64, 6, 6)).astype(np.float32)
        np.testing.assert_allclose(acc.run(x), functional.mhsa2d_eval(m, x), rtol=1e-5, atol=1e-5)

    def test_fixed_run_close_to_float(self, rng):
        m = proposed_mhsa_module()
        acc = MHSAAccelerator(m, proposed_mhsa_design(FIXED_DEFAULT))
        x = rng.normal(size=(1, 64, 6, 6)).astype(np.float32)
        assert np.abs(acc.run(x) - functional.mhsa2d_eval(m, x)).max() < 0.05

    def test_latency_stats_deterministic(self):
        acc = MHSAAccelerator(botnet_mhsa_module(), botnet_mhsa_design(FIXED_DEFAULT))
        s1 = acc.latency_stats(seed=7)
        s2 = acc.latency_stats(seed=7)
        assert s1 == s2
        assert s1["max"] >= s1["mean"] > 0

    def test_table9_fixed_latency(self):
        acc = MHSAAccelerator(botnet_mhsa_module(), botnet_mhsa_design(FIXED_DEFAULT))
        assert acc.latency().total_ms == pytest.approx(13.37, rel=0.05)

    def test_table9_float_latency(self):
        acc = MHSAAccelerator(botnet_mhsa_module(), botnet_mhsa_design(FLOAT32))
        assert acc.latency().total_ms == pytest.approx(24.21, rel=0.08)


class TestBoard:
    def test_cpu_latency_matches_paper(self):
        board = ZynqBoard()
        ms = board.software_latency_ms(botnet_mhsa_design(FIXED_DEFAULT))
        assert ms == pytest.approx(35.18, rel=0.05)

    def test_speedup_fixed_about_2p63(self):
        """Headline contribution (1): up to 2.63x over software."""
        board = ZynqBoard()
        d = botnet_mhsa_design(FIXED_DEFAULT)
        sw = board.run_software(d)
        hw = board.run_accelerated(botnet_mhsa_module(), d)
        assert sw.mean_ms / hw.mean_ms == pytest.approx(2.63, rel=0.05)

    def test_float_speedup_smaller(self):
        board = ZynqBoard()
        sw = board.run_software(botnet_mhsa_design(FLOAT32))
        hw = board.run_accelerated(botnet_mhsa_module(), botnet_mhsa_design(FLOAT32))
        speedup = sw.mean_ms / hw.mean_ms
        assert 1.2 < speedup < 1.7  # paper: 1.45x

    def test_compare_returns_all_modes(self):
        board = ZynqBoard()
        results = board.compare(
            botnet_mhsa_module(),
            {
                "FPGA (float)": botnet_mhsa_design(FLOAT32),
                "FPGA (fixed)": botnet_mhsa_design(FIXED_DEFAULT),
            },
            n=10,
        )
        assert [r.mode for r in results] == ["CPU", "FPGA (float)", "FPGA (fixed)"]
        assert results[0].mean_ms > results[1].mean_ms > results[2].mean_ms
