"""Tests for Linear / Conv2d / DepthwiseSeparableConv2d and activations."""

import numpy as np
import pytest

from repro import nn
from repro.tensor import Tensor, gradcheck


class TestLinear:
    def test_output_shape(self, rng):
        lin = nn.Linear(5, 3, rng=rng)
        out = lin(Tensor(rng.normal(size=(7, 5)).astype(np.float32)))
        assert out.shape == (7, 3)

    def test_matches_manual(self, rng):
        lin = nn.Linear(4, 2, rng=rng)
        x = rng.normal(size=(3, 4)).astype(np.float32)
        ref = x @ lin.weight.data.T + lin.bias.data
        np.testing.assert_allclose(lin(Tensor(x)).data, ref, rtol=1e-5)

    def test_no_bias(self, rng):
        lin = nn.Linear(4, 2, bias=False, rng=rng)
        assert lin.bias is None
        assert lin.num_parameters() == 8

    def test_3d_input(self, rng):
        lin = nn.Linear(4, 6, rng=rng)
        out = lin(Tensor(rng.normal(size=(2, 5, 4)).astype(np.float32)))
        assert out.shape == (2, 5, 6)

    def test_gradients_flow(self, rng):
        lin = nn.Linear(3, 2, rng=rng)
        lin(Tensor(rng.normal(size=(4, 3)).astype(np.float32))).sum().backward()
        assert lin.weight.grad is not None
        assert lin.bias.grad is not None

    def test_param_count_matches_torch_convention(self, rng):
        assert nn.Linear(256, 10, rng=rng).num_parameters() == 2570


class TestConv2dLayer:
    def test_shape_with_stride_padding(self, rng):
        conv = nn.Conv2d(3, 8, 3, stride=2, padding=1, rng=rng)
        out = conv(Tensor(rng.normal(size=(2, 3, 8, 8)).astype(np.float32)))
        assert out.shape == (2, 8, 4, 4)

    def test_param_count(self, rng):
        conv = nn.Conv2d(16, 32, 3, rng=rng)
        assert conv.num_parameters() == 32 * 16 * 9 + 32

    def test_no_bias_count(self, rng):
        conv = nn.Conv2d(16, 32, 3, bias=False, rng=rng)
        assert conv.num_parameters() == 32 * 16 * 9

    def test_bad_groups_raises(self, rng):
        with pytest.raises(ValueError):
            nn.Conv2d(5, 8, 3, groups=2, rng=rng)

    def test_bias_applied_per_channel(self, rng):
        conv = nn.Conv2d(1, 2, 1, rng=rng)
        conv.weight.data[...] = 0.0
        conv.bias.data[:] = [1.0, -1.0]
        out = conv(Tensor(np.zeros((1, 1, 2, 2), dtype=np.float32)))
        assert (out.data[0, 0] == 1.0).all()
        assert (out.data[0, 1] == -1.0).all()


class TestDSC:
    def test_param_reduction_vs_dense(self, rng):
        """Sec. IV: DSC costs N*K^2 + N*M versus dense N*M*K^2."""
        n_ch = 64
        dsc = nn.DepthwiseSeparableConv2d(n_ch, n_ch, 3, bias=False, rng=rng)
        dense = nn.Conv2d(n_ch, n_ch, 3, bias=False, rng=rng)
        assert dsc.num_parameters() == n_ch * 9 + n_ch * n_ch
        assert dense.num_parameters() == n_ch * n_ch * 9
        # roughly K^2 = 9x reduction when N = M >> K
        assert dense.num_parameters() / dsc.num_parameters() > 7.5

    def test_output_shape(self, rng):
        dsc = nn.DepthwiseSeparableConv2d(4, 8, 3, stride=2, padding=1, rng=rng)
        out = dsc(Tensor(rng.normal(size=(1, 4, 6, 6)).astype(np.float32)))
        assert out.shape == (1, 8, 3, 3)

    def test_gradcheck_through_dsc(self, rng):
        dsc = nn.DepthwiseSeparableConv2d(2, 3, 3, rng=rng)
        # cast params to float64 for gradient checking
        for p in dsc.parameters():
            p.data = p.data.astype(np.float64)
        gradcheck(lambda x: dsc(x), [rng.normal(size=(1, 2, 4, 4))])


class TestActivationsAndMisc:
    @pytest.mark.parametrize(
        "layer,ref",
        [
            (nn.ReLU(), lambda a: np.maximum(a, 0)),
            (nn.Sigmoid(), lambda a: 1 / (1 + np.exp(-a))),
            (nn.Tanh(), np.tanh),
        ],
    )
    def test_activation_values(self, rng, layer, ref):
        a = rng.normal(size=(3, 4)).astype(np.float32)
        np.testing.assert_allclose(layer(Tensor(a)).data, ref(a), rtol=1e-5)

    def test_softmax_layer(self, rng):
        out = nn.Softmax()(Tensor(rng.normal(size=(2, 5)).astype(np.float32)))
        np.testing.assert_allclose(out.data.sum(axis=-1), 1.0, rtol=1e-5)

    def test_identity(self, rng):
        a = Tensor(rng.normal(size=(2, 2)))
        assert nn.Identity()(a) is a

    def test_flatten(self, rng):
        out = nn.Flatten()(Tensor(rng.normal(size=(2, 3, 4))))
        assert out.shape == (2, 12)

    def test_global_avg_pool(self, rng):
        a = rng.normal(size=(2, 3, 4, 4)).astype(np.float32)
        out = nn.GlobalAvgPool2d()(Tensor(a))
        np.testing.assert_allclose(out.data, a.mean(axis=(2, 3)), rtol=1e-5)

    def test_adaptive_avg_pool(self, rng):
        a = rng.normal(size=(1, 2, 6, 6)).astype(np.float32)
        out = nn.AdaptiveAvgPool2d(3)(Tensor(a))
        assert out.shape == (1, 2, 3, 3)

    def test_adaptive_avg_pool_indivisible_raises(self, rng):
        with pytest.raises(ValueError):
            nn.AdaptiveAvgPool2d(4)(Tensor(rng.normal(size=(1, 1, 6, 6))))


class TestDropout:
    def test_eval_mode_identity(self, rng):
        d = nn.Dropout(0.5, rng=rng)
        d.eval()
        a = Tensor(rng.normal(size=(100,)).astype(np.float32))
        np.testing.assert_array_equal(d(a).data, a.data)

    def test_train_mode_zeros_fraction(self):
        d = nn.Dropout(0.5, rng=np.random.default_rng(0))
        out = d(Tensor(np.ones(10000, dtype=np.float32)))
        frac = float((out.data == 0).mean())
        assert 0.45 < frac < 0.55

    def test_inverted_scaling_preserves_mean(self):
        d = nn.Dropout(0.3, rng=np.random.default_rng(0))
        out = d(Tensor(np.ones(100000, dtype=np.float32)))
        assert out.data.mean() == pytest.approx(1.0, abs=0.02)

    def test_p_zero_is_identity(self, rng):
        d = nn.Dropout(0.0)
        a = Tensor(rng.normal(size=(5,)))
        assert d(a) is a

    def test_invalid_p_raises(self):
        with pytest.raises(ValueError):
            nn.Dropout(1.0)
