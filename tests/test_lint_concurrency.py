"""Tests for :mod:`repro.lint.concurrency` — the static analyzer, the
runtime lock sanitizer, and the lint-engine satellites that shipped with
them.

Layout:

* per-rule fixture pairs — for each of CON001–CON004 one snippet that
  must fire and one that must stay quiet, via
  :func:`repro.lint.concurrency.analyze_text`;
* the clean-tree gate — the real ``repro`` package passes all four
  rules with only the sanctioned suppressions, and its static
  lock-order graph is acyclic;
* engine satellites — duplicate rule-id rejection (registry and
  explicit ``Linter(rules=...)``), suppression-usage recording and the
  SUP001 stale-suppression report;
* the runtime sanitizer — factory patching round-trip, the
  BoundedSemaphore initialization regression, edge recording, and
  cross-check violations (unpredicted edge, observed cycle);
* CLI — ``--concurrency`` and ``--report-unused-suppressions`` wiring.
"""

import textwrap
import threading

import pytest

from repro.lint.concurrency import (
    CONCURRENCY_RULES,
    analyze_package,
    analyze_text,
    package_lock_graph,
    package_lock_model,
)
from repro.lint.concurrency.analyzer import _find_cycles, lock_order_edges
from repro.lint.concurrency.sanitizer import _RAW, LockSanitizer, install_from_env
from repro.lint.concurrency.model import build_model
from repro.lint.cli import main
from repro.lint.engine import (
    Linter,
    SourceFile,
    unused_suppression_diagnostics,
)
from repro.lint.rules import Rule, all_rules, register


def _fired(text, rule):
    diags = analyze_text(textwrap.dedent(text))
    return [d for d in diags if d.rule == rule]


def assert_fires(rule, text):
    assert _fired(text, rule), (
        f"{rule} did not fire on:\n{textwrap.dedent(text)}"
    )


def assert_quiet(rule, text):
    diags = _fired(text, rule)
    assert not diags, (
        f"{rule} fired unexpectedly: {[d.message for d in diags]}"
    )


# ----------------------------------------------------------------------
# CON001 — unguarded shared state
# ----------------------------------------------------------------------

CON001_BAD = """
    import threading

    class Counter:
        def __init__(self):
            self._lock = threading.Lock()
            self.total = 0

        def add(self, n):
            with self._lock:
                self.total += n

        def reset(self):
            self.total = 0
"""

CON001_GOOD = """
    import threading

    class Counter:
        def __init__(self):
            self._lock = threading.Lock()
            self.total = 0

        def add(self, n):
            with self._lock:
                self.total += n

        def reset(self):
            with self._lock:
                self.total = 0
"""


class TestCON001:
    def test_unguarded_mixed_write_fires(self):
        diags = _fired(CON001_BAD, "CON001")
        assert len(diags) == 1
        assert "reset" in diags[0].message

    def test_guarded_writes_quiet(self):
        assert_quiet("CON001", CON001_GOOD)

    def test_single_writer_attr_quiet(self):
        # one non-init writer method: the attr belongs to that method
        assert_quiet("CON001", """
            import threading

            class Box:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.value = None

                def set(self, v):
                    self.value = v
        """)

    def test_locked_helper_without_guard_fires(self):
        assert_fires("CON001", """
            import threading

            class Q:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.items = []

                def _evict_locked(self):
                    self.items.pop()

                def evict(self):
                    self._evict_locked()
        """)

    def test_locked_helper_with_guard_quiet(self):
        assert_quiet("CON001", """
            import threading

            class Q:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.items = []

                def _evict_locked(self):
                    self.items.pop()

                def evict(self):
                    with self._lock:
                        self._evict_locked()
        """)


# ----------------------------------------------------------------------
# CON002 — lock-order cycles
# ----------------------------------------------------------------------

CON002_BAD = """
    import threading

    class Transfer:
        def __init__(self):
            self._src = threading.Lock()
            self._dst = threading.Lock()

        def forward(self):
            with self._src:
                with self._dst:
                    pass

        def backward(self):
            with self._dst:
                with self._src:
                    pass
"""

CON002_GOOD = """
    import threading

    class Transfer:
        def __init__(self):
            self._src = threading.Lock()
            self._dst = threading.Lock()

        def forward(self):
            with self._src:
                with self._dst:
                    pass

        def backward(self):
            with self._src:
                with self._dst:
                    pass
"""


class TestCON002:
    def test_opposite_orders_fire(self):
        diags = _fired(CON002_BAD, "CON002")
        assert diags and "cycle" in diags[0].message

    def test_consistent_order_quiet(self):
        assert_quiet("CON002", CON002_GOOD)

    def test_edges_extracted(self):
        src = SourceFile("<s>", textwrap.dedent(CON002_GOOD),
                         rel="serve/snippet.py", domain="library")
        edges = lock_order_edges(build_model([src]))
        assert ("Transfer._src", "Transfer._dst") in edges
        assert ("Transfer._dst", "Transfer._src") not in edges

    def test_call_mediated_cycle_fires(self):
        # the cycle only exists through a method call under a held lock
        assert_fires("CON002", """
            import threading

            class A:
                def __init__(self, other: "B"):
                    self._la = threading.Lock()
                    self.other = other

                def poke(self):
                    with self._la:
                        self.other.poke_back(self)

            class B:
                def __init__(self):
                    self._lb = threading.Lock()

                def poke_back(self, a: "A"):
                    with self._lb:
                        with a._la:
                            pass
        """)


# ----------------------------------------------------------------------
# CON003 — blocking under a held lock
# ----------------------------------------------------------------------

class TestCON003:
    def test_sleep_under_lock_fires(self):
        assert_fires("CON003", """
            import threading
            import time

            class Poller:
                def __init__(self):
                    self._lock = threading.Lock()

                def poll(self):
                    with self._lock:
                        time.sleep(0.1)
        """)

    def test_sleep_outside_lock_quiet(self):
        assert_quiet("CON003", """
            import threading
            import time

            class Poller:
                def __init__(self):
                    self._lock = threading.Lock()

                def poll(self):
                    with self._lock:
                        pass
                    time.sleep(0.1)
        """)

    def test_pipe_recv_under_lock_fires(self):
        assert_fires("CON003", """
            import multiprocessing as mp
            import threading

            class Replica:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.conn, self.child = mp.Pipe()

                def call(self):
                    with self._lock:
                        return self.conn.recv()
        """)

    def test_condition_wait_on_own_lock_quiet(self):
        # waiting on the held condition releases it — the CV contract
        assert_quiet("CON003", """
            import threading

            class Queue:
                def __init__(self):
                    self._cond = threading.Condition()

                def get(self):
                    with self._cond:
                        self._cond.wait(0.1)
        """)

    def test_simplequeue_put_under_lock_quiet(self):
        # SimpleQueue.put is unbounded: it cannot block
        assert_quiet("CON003", """
            import queue
            import threading

            class Batcher:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._q = queue.SimpleQueue()

                def submit(self, item):
                    with self._lock:
                        self._q.put(item)
        """)

    def test_suppression_silences_and_counts_as_used(self):
        text = textwrap.dedent("""
            import threading
            import time

            class Poller:
                def __init__(self):
                    self._lock = threading.Lock()

                def poll(self):
                    with self._lock:
                        time.sleep(0.1)  # repro-lint: ignore[CON003] bounded
        """)
        src = SourceFile("<s>", text, rel="serve/snippet.py",
                         domain="library")
        from repro.lint.concurrency.analyzer import analyze_sources
        assert analyze_sources([src]) == []
        assert unused_suppression_diagnostics([src]) == []


# ----------------------------------------------------------------------
# CON003 — socket calls (the repro.cluster wire protocol)
# ----------------------------------------------------------------------

SOCKET_BAD = """
    import socket
    import threading

    class Client:
        def __init__(self):
            self._lock = threading.Lock()
            self._sock = socket.create_connection(("127.0.0.1", 9))

        def call(self, data):
            with self._lock:
                self._sock.sendall(data)
                return self._sock.recv(64)
"""

SOCKET_GOOD = """
    import socket
    import threading

    class Client:
        def __init__(self):
            self._lock = threading.Lock()
            self._sock = socket.create_connection(("127.0.0.1", 9))

        def call(self, data):
            with self._lock:
                pass
            self._sock.sendall(data)
            return self._sock.recv(64)
"""


class TestCON003Sockets:
    def test_send_recv_under_lock_fire(self):
        diags = _fired(SOCKET_BAD, "CON003")
        assert len(diags) == 2
        names = " ".join(d.message for d in diags)
        assert "sendall" in names and "recv" in names

    def test_send_recv_outside_lock_quiet(self):
        assert_quiet("CON003", SOCKET_GOOD)

    def test_accept_under_lock_fires(self):
        assert_fires("CON003", """
            import socket
            import threading

            class Acceptor:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._listener = socket.socket()

                def accept_one(self):
                    with self._lock:
                        return self._listener.accept()
        """)

    def test_connect_under_lock_fires(self):
        assert_fires("CON003", """
            import socket
            import threading

            class Dialer:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._sock = socket.socket()

                def dial(self, address):
                    with self._lock:
                        self._sock.connect(address)
        """)

    def test_create_connection_under_lock_fires(self):
        assert_fires("CON003", """
            import socket
            import threading

            class Dialer:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._sock = None

                def dial(self, address):
                    with self._lock:
                        self._sock = socket.create_connection(address)
        """)

    def test_socket_constructors_typed(self):
        # both constructors hand back the blocking-capable receiver type
        src = SourceFile("<s>", textwrap.dedent(SOCKET_BAD),
                         rel="cluster/snippet.py", domain="library")
        model = build_model([src])
        assert model.classes["Client"].attr_types["_sock"] == "socket.socket"

    def test_serialized_round_trip_suppression_quiet(self):
        # the WorkerClient idiom: the lock deliberately serializes the
        # whole send->recv round trip; the sanctioned suppression both
        # silences CON003 and counts as used
        text = textwrap.dedent("""
            import socket
            import threading

            class Client:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._sock = socket.create_connection(("127.0.0.1", 9))

                def call(self, data):
                    with self._lock:
                        self._sock.sendall(data)  # repro-lint: ignore[CON003] serialized round trip
                        return self._sock.recv(64)  # repro-lint: ignore[CON003] serialized round trip
        """)
        src = SourceFile("<s>", text, rel="cluster/snippet.py",
                         domain="library")
        from repro.lint.concurrency.analyzer import analyze_sources
        assert analyze_sources([src]) == []
        assert unused_suppression_diagnostics([src]) == []


# ----------------------------------------------------------------------
# CON004 — fork-captured state
# ----------------------------------------------------------------------

class TestCON004:
    def test_bound_method_target_fires(self):
        assert_fires("CON004", """
            import multiprocessing as mp
            import threading

            class Replica:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.proc = None

                def start(self):
                    self.proc = mp.Process(target=self._loop)
                    self.proc.start()

                def _loop(self):
                    pass
        """)

    def test_staticmethod_target_quiet(self):
        assert_quiet("CON004", """
            import multiprocessing as mp
            import threading

            class Replica:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.proc = None

                def start(self, conn):
                    self.proc = mp.Process(
                        target=Replica._loop, args=(conn,)
                    )
                    self.proc.start()

                @staticmethod
                def _loop(conn):
                    pass
        """)

    def test_lock_in_args_fires(self):
        assert_fires("CON004", """
            import multiprocessing as mp
            import threading

            class Replica:
                def __init__(self):
                    self._lock = threading.Lock()

                def start(self):
                    mp.Process(
                        target=Replica._loop, args=(self._lock,)
                    ).start()

                @staticmethod
                def _loop(lock):
                    pass
        """)

    def test_fork_under_held_lock_fires(self):
        assert_fires("CON004", """
            import multiprocessing as mp
            import threading

            class Replica:
                def __init__(self):
                    self._lock = threading.Lock()

                def start(self):
                    with self._lock:
                        mp.Process(target=Replica._loop).start()

                @staticmethod
                def _loop():
                    pass
        """)


# ----------------------------------------------------------------------
# the clean-tree gate
# ----------------------------------------------------------------------

class TestCleanTree:
    def test_package_passes_all_rules(self):
        # zero findings: real bugs are fixed, deliberate exceptions
        # carry sanctioned inline suppressions
        diags = analyze_package()
        assert diags == [], [d.format() for d in diags]

    def test_package_lock_graph_is_acyclic(self):
        assert not _find_cycles(package_lock_graph())

    def test_sanctioned_con003_suppressions_exist(self):
        # ProcessReplica serializes its pipe round-trips (run, the
        # refresh sentinel, and close's shutdown) under _pipe_lock on
        # purpose; the suppressions documenting that must stay
        import repro.serve.pool as pool

        src = SourceFile(pool.__file__, open(pool.__file__).read())
        con003 = [ids for ids in src.suppressions.values()
                  if "CON003" in ids]
        assert len(con003) == 7

    def test_sanctioned_transport_suppressions_exist(self):
        # WorkerClient serializes its socket round-trip under _lock on
        # purpose (mirrors ProcessReplica's pipe); exactly the sendall
        # and recv suppressions documenting that must stay
        import repro.cluster.transport as transport

        src = SourceFile(transport.__file__,
                         open(transport.__file__).read())
        con003 = [ids for ids in src.suppressions.values()
                  if "CON003" in ids]
        assert len(con003) == 2

    def test_model_covers_the_threaded_classes(self):
        model = package_lock_model()
        for name in ("Scheduler", "AdmissionQueue", "ProcessReplica",
                     "MicroBatcher", "SessionStats", "Tracer",
                     "WorkerClient", "ClusterWorker", "Autoscaler",
                     "SharedWeightStore", "SampleTap", "WeightPublisher",
                     "AdaptationController"):
            assert name in model.classes, name
        assert model.guard_nodes("Scheduler") == ("Scheduler._lock",)
        assert model.guard_nodes("WorkerClient") == ("WorkerClient._lock",)
        # the adaptation tap and publisher each own exactly one lock,
        # held only around their own state (the lock graph gains no
        # edges from the adapt/ subtree)
        assert model.guard_nodes("SampleTap") == ("SampleTap._lock",)
        assert model.guard_nodes("WeightPublisher") == (
            "WeightPublisher._lock",)


# ----------------------------------------------------------------------
# engine satellites: duplicate ids, suppression accounting
# ----------------------------------------------------------------------

class TestEngineSatellites:
    def test_register_rejects_duplicate_rule_id(self):
        taken = all_rules()[0].id

        class Dup(Rule):
            id = taken
            name = "dup"
            description = "duplicate for the test"

            def check(self, src):
                return []

        with pytest.raises(ValueError, match="duplicate rule id"):
            register(Dup)
        # the registry is unchanged: the original rule survives
        assert [r.id for r in all_rules()].count(taken) == 1

    def test_linter_rejects_duplicate_rules_argument(self):
        rule = all_rules()[0]
        with pytest.raises(ValueError, match="duplicate rule id"):
            Linter(rules=[rule, rule])

    def test_stale_suppression_reported(self):
        src = SourceFile(
            "<s>", "x = 1  # repro-lint: ignore[MUT001] stale\n",
            rel="", domain="library",
        )
        Linter().run_source(src)
        diags = unused_suppression_diagnostics([src])
        assert [d.rule for d in diags] == ["SUP001"]
        assert "MUT001" in diags[0].message

    def test_used_suppression_not_reported(self):
        src = SourceFile(
            "<s>",
            "def step(p, g):\n"
            "    p.data -= g  # repro-lint: ignore[MUT001] optimizer\n",
            rel="", domain="library",
        )
        assert Linter(select=["MUT001"]).run_source(src) == []
        assert unused_suppression_diagnostics([src]) == []

    def test_partially_used_multi_id_suppression(self):
        src = SourceFile(
            "<s>",
            "def step(p, g):\n"
            "    p.data -= g  # repro-lint: ignore[MUT001,RNG001] x\n",
            rel="", domain="library",
        )
        Linter().run_source(src)
        diags = unused_suppression_diagnostics([src])
        assert len(diags) == 1
        assert "RNG001" in diags[0].message
        assert "MUT001" not in diags[0].message

    def test_docstring_mention_is_not_a_suppression(self):
        src = SourceFile(
            "<s>",
            '"""Suppress with # repro-lint: ignore[MUT001] reason."""\n',
            rel="", domain="library",
        )
        assert src.suppressions == {}


# ----------------------------------------------------------------------
# the runtime sanitizer
# ----------------------------------------------------------------------

def _make_instrumented(tmp_path, source):
    """exec *source* under a ``repro.``-prefixed module name so the
    sanitizer's caller gating instruments the locks it creates, with a
    real backing file so creation-site labels resolve."""
    path = tmp_path / "santest.py"
    path.write_text(textwrap.dedent(source))
    ns = {"__name__": "repro._sanitizer_test"}
    exec(compile(path.read_text(), str(path), "exec"), ns)
    return ns


SAN_SOURCE = """
    import threading

    class Scheduler:
        def __init__(self):
            self._lock = threading.Lock()

    class AdmissionQueue:
        def __init__(self):
            self._cond = threading.Lock()
"""


class TestSanitizer:
    def test_install_uninstall_round_trip(self):
        san = LockSanitizer().install()
        try:
            assert threading.Lock is not _RAW["lock"]
        finally:
            san.uninstall()
        assert threading.Lock is _RAW["lock"]
        assert threading.Semaphore is _RAW["semaphore"]
        assert threading.Condition is _RAW["condition"]

    def test_patched_bounded_semaphore_still_initializes(self):
        # regression: BoundedSemaphore.__init__ resolves Semaphore
        # through the patched module global; the patch must keep it a
        # real class or the parent initializer silently never runs
        san = LockSanitizer().install()
        try:
            sem = threading.BoundedSemaphore(2)
            assert sem.acquire(timeout=1.0)
            sem.release()
            with pytest.raises(ValueError):
                sem.release()  # the bound check must survive the patch
            raw = _RAW["bounded_semaphore"](1)
            assert raw.acquire(blocking=False)
            raw.release()
        finally:
            san.uninstall()

    def test_records_edges_and_flags_unpredicted(self, tmp_path):
        san = LockSanitizer().install()
        try:
            ns = _make_instrumented(tmp_path, SAN_SOURCE)
            sched, queue = ns["Scheduler"](), ns["AdmissionQueue"]()
            with sched._lock:
                with queue._cond:
                    pass
        finally:
            san.uninstall()
        edges = san.observed_edges()
        assert edges == {("Scheduler._lock", "AdmissionQueue._cond"): 1}
        # both labels are real static nodes, but the package's lock
        # graph never orders them: the cross-check must object
        verdict = san.cross_check()
        kinds = {v["kind"] for v in verdict["violations"]}
        assert "unpredicted-edge" in kinds

    def test_detects_observed_cycle(self, tmp_path):
        san = LockSanitizer().install()
        try:
            ns = _make_instrumented(tmp_path, SAN_SOURCE)
            sched, queue = ns["Scheduler"](), ns["AdmissionQueue"]()
            with sched._lock:
                with queue._cond:
                    pass
            with queue._cond:
                with sched._lock:
                    pass
        finally:
            san.uninstall()
        verdict = san.cross_check()
        kinds = {v["kind"] for v in verdict["violations"]}
        assert "cycle" in kinds
        assert "no lock-order violations" not in san.summary(verdict)

    def test_non_repro_locks_stay_raw(self):
        san = LockSanitizer().install()
        try:
            lock = threading.Lock()  # created from the test module
        finally:
            san.uninstall()
        assert type(lock) is type(_RAW["lock"]())
        assert san.locks == {}

    def test_install_from_env_gating(self, monkeypatch):
        monkeypatch.setenv("REPRO_LOCK_SANITIZER", "0")
        assert install_from_env() is None
        monkeypatch.setenv("REPRO_LOCK_SANITIZER", "1")
        san = install_from_env()
        try:
            assert isinstance(san, LockSanitizer)
        finally:
            san.uninstall()


# ----------------------------------------------------------------------
# CLI wiring
# ----------------------------------------------------------------------

def _write_pkg(tmp_path, body):
    """A throwaway ``repro/serve`` package so rel-scoping applies."""
    doc = '"""Fixture module."""\n'
    pkg = tmp_path / "repro"
    (pkg / "serve").mkdir(parents=True)
    (pkg / "__init__.py").write_text(doc)
    (pkg / "serve" / "__init__.py").write_text(doc)
    (pkg / "serve" / "unit.py").write_text(doc + textwrap.dedent(body))
    return pkg


class TestCLI:
    def test_concurrency_flag_fails_on_deadlock(self, tmp_path, capsys):
        pkg = _write_pkg(tmp_path, CON002_BAD)
        rc = main([str(pkg), "--concurrency", "--format", "json"])
        out = capsys.readouterr().out
        assert rc == 1
        assert "CON002" in out

    def test_without_flag_concurrency_rules_stay_off(self, tmp_path,
                                                     capsys):
        pkg = _write_pkg(tmp_path, CON002_BAD)
        main([str(pkg), "--format", "json"])
        assert "CON002" not in capsys.readouterr().out

    def test_report_unused_suppressions_flag(self, tmp_path, capsys):
        pkg = _write_pkg(
            tmp_path, "x = 1  # repro-lint: ignore[CON002] stale\n"
        )
        rc = main([str(pkg), "--concurrency",
                   "--report-unused-suppressions"])
        out = capsys.readouterr().out
        assert rc == 1
        assert "SUP001" in out

    def test_real_tree_clean_through_the_cli(self, capsys):
        import repro

        import os
        root = os.path.dirname(os.path.abspath(repro.__file__))
        rc = main([root, "--concurrency",
                   "--report-unused-suppressions"])
        capsys.readouterr()
        assert rc == 0

    def test_list_rules_includes_concurrency_catalogue(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in CONCURRENCY_RULES:
            assert rule.id in out
        assert "SUP001" in out
