"""Tests for quantization-aware training (STE fake-quantisation)."""

import numpy as np
import pytest

from repro.fixedpoint import QATMHSA2d, QFormat, fake_quantize, prepare_qat
from repro.models import build_model
from repro.nn.attention import MHSA2d
from repro.tensor import Tensor, no_grad


class TestFakeQuantize:
    def test_forward_rounds_to_grid(self, rng):
        f = QFormat(12, 4)
        x = Tensor(rng.normal(size=(50,)), dtype=np.float64)
        y = fake_quantize(x, f)
        scaled = y.data / f.scale
        np.testing.assert_allclose(scaled, np.round(scaled), atol=1e-9)

    def test_forward_saturates(self):
        f = QFormat(8, 4)
        y = fake_quantize(Tensor(np.array([1000.0, -1000.0])), f)
        assert y.data[0] == pytest.approx(f.value_max, rel=1e-3)
        assert y.data[1] == pytest.approx(f.value_min, rel=1e-3)

    def test_ste_gradient_identity_in_range(self, rng):
        f = QFormat(16, 8)
        x = Tensor(rng.uniform(-10, 10, size=(20,)), requires_grad=True,
                   dtype=np.float64)
        fake_quantize(x, f).sum().backward()
        np.testing.assert_array_equal(x.grad, np.ones(20))

    def test_ste_gradient_zero_when_saturated(self):
        f = QFormat(8, 4)
        x = Tensor(np.array([0.0, 500.0, -500.0]), requires_grad=True,
                   dtype=np.float64)
        fake_quantize(x, f).sum().backward()
        np.testing.assert_array_equal(x.grad, [1.0, 0.0, 0.0])

    def test_idempotent(self, rng):
        f = QFormat(12, 6)
        x = Tensor(rng.normal(size=(10,)), dtype=np.float64)
        once = fake_quantize(x, f)
        twice = fake_quantize(once, f)
        np.testing.assert_array_equal(once.data, twice.data)


class TestPrepareQAT:
    def test_replaces_mhsa(self):
        model = build_model("ode_botnet", profile="tiny")
        paths = prepare_qat(model, QFormat(16, 8), QFormat(12, 4))
        assert paths == ["block3.func.mhsa"]
        assert isinstance(model.block3.func.mhsa, QATMHSA2d)

    def test_parameters_shared_not_copied(self):
        model = build_model("ode_botnet", profile="tiny")
        before = model.mhsa.w_q
        prepare_qat(model, QFormat(16, 8), QFormat(12, 4))
        assert model.mhsa.w_q is before  # same Parameter object

    def test_param_count_unchanged(self):
        model = build_model("ode_botnet", profile="tiny")
        n = model.num_parameters()
        prepare_qat(model, QFormat(16, 8), QFormat(12, 4))
        assert model.num_parameters() == n

    def test_no_mhsa_raises(self):
        model = build_model("odenet", profile="tiny")
        with pytest.raises(ValueError):
            prepare_qat(model, QFormat(16, 8), QFormat(12, 4))

    def test_forward_output_on_feature_grid(self, rng):
        model = build_model("ode_botnet", profile="tiny")
        f = QFormat(16, 8)
        prepare_qat(model, f, QFormat(12, 4))
        qat = model.mhsa
        x = Tensor(rng.normal(size=(1, qat.channels, qat.height,
                                    qat.width)).astype(np.float32))
        with no_grad():
            out = qat(x)
        scaled = out.data.astype(np.float64) / f.scale
        np.testing.assert_allclose(scaled, np.round(scaled), atol=1e-3)

    def test_weights_unchanged_after_forward(self, rng):
        model = build_model("ode_botnet", profile="tiny")
        prepare_qat(model, QFormat(16, 8), QFormat(12, 4))
        qat = model.mhsa
        w_before = qat.w_q.data.copy()
        x = Tensor(rng.normal(size=(1, qat.channels, qat.height,
                                    qat.width)).astype(np.float32))
        with no_grad():
            qat(x)
        np.testing.assert_array_equal(qat.w_q.data, w_before)

    def test_wide_format_qat_matches_float(self, rng):
        """With a very wide format the QAT wrapper is ~the identity."""
        base = MHSA2d(8, 3, 3, heads=2, attention_activation="relu",
                      out_layernorm=True, rng=rng)
        qat = QATMHSA2d.from_mhsa(base, QFormat(32, 16), QFormat(32, 16))
        x = Tensor(rng.normal(size=(1, 8, 3, 3)).astype(np.float32))
        with no_grad():
            np.testing.assert_allclose(
                qat(x).data, base(x).data, atol=1e-3
            )

    def test_training_step_updates_weights(self, rng):
        from repro.train import SGD, CrossEntropyLoss

        model = build_model("ode_botnet", profile="tiny")
        prepare_qat(model, QFormat(14, 7), QFormat(10, 3))
        before = model.mhsa.w_q.data.copy()
        x = Tensor(rng.normal(size=(4, 3, 32, 32)).astype(np.float32))
        loss = CrossEntropyLoss()(model(x), np.array([0, 1, 2, 3]))
        loss.backward()
        SGD(model.parameters(), lr=0.1).step()
        assert not np.allclose(model.mhsa.w_q.data, before)
