"""repro.adapt: streaming domain adaptation with hot weight swap.

The adaptation loop's contract, pinned:

* drift streams are deterministic given ``(n, schedule, seed)`` and a
  ``severity=0`` schedule is bit-identical to the clean stream;
* the tap is a bounded O(1) ring: overflow drops the *oldest* sample,
  draws are seeded and replayable;
* the online trainer moves exactly the adapted parameter subset — the
  frozen backbone (including BatchNorm running stats) stays bit-frozen;
* a publish moves *every* replica to the new weight generation, serving
  stays correct across the swap, and in-flight requests never hang;
* the controller wires it all to a live ``Server`` via
  ``SessionConfig(adapt=...)`` and labelled submits.
"""

import numpy as np
import pytest

from repro.adapt import (
    AdaptConfig,
    AdaptationController,
    DEFAULT_ADAPT_PREFIXES,
    OnlineTrainer,
    PublishError,
    SampleTap,
    WeightPublisher,
    adapt_parameters,
)
from repro.data import DriftSchedule, make_drift_stream
from repro.models import build_model
from repro.runtime import SessionConfig
from repro.serve import ReplicaPool, Server, run_load


def _stream(n=8, size=32, seed=0, schedule=None):
    return make_drift_stream(n, schedule, size=size, seed=seed)


# ----------------------------------------------------------------------
class TestDriftSchedule:
    def test_level_ramps_from_start_and_saturates(self):
        sched = DriftSchedule(kind="noise", severity=2.0, start=0.25,
                              ramp=0.5)
        np.testing.assert_allclose(
            sched.level([0.0, 0.25, 0.5, 0.75, 1.0]),
            [0.0, 0.0, 1.0, 2.0, 2.0],
        )

    def test_kind_validation(self):
        with pytest.raises(ValueError, match="unknown drift kind"):
            DriftSchedule(kind="wobble")
        with pytest.raises(ValueError, match="start"):
            DriftSchedule(start=1.5)
        with pytest.raises(ValueError, match="ramp"):
            DriftSchedule(ramp=0.0)

    def test_each_kind_only_moves_its_own_knob(self):
        t = np.array([1.0])
        rot = DriftSchedule(kind="rotation", severity=1.0)
        assert rot.angle_offset(t)[0] > 0
        assert rot.noise_sigma(t)[0] == 0
        noise = DriftSchedule(kind="noise", severity=1.0)
        assert noise.angle_offset(t)[0] == 0
        assert noise.noise_sigma(t)[0] > 0

    def test_prior_drift_tilts_toward_low_classes(self):
        sched = DriftSchedule(kind="prior", severity=1.0)
        w = sched.class_weights(np.array([1.0]))[0]
        assert w[0] > w[-1] * 2
        np.testing.assert_allclose(w.sum(), 1.0)
        # pre-drift the prior is uniform
        w0 = sched.class_weights(np.array([0.0]))[0]
        np.testing.assert_allclose(w0, 1.0 / len(w0))


class TestDriftStream:
    def test_deterministic_given_seed(self):
        a_img, a_lab, a_t = _stream(seed=3)
        b_img, b_lab, b_t = _stream(seed=3)
        np.testing.assert_array_equal(a_img, b_img)
        np.testing.assert_array_equal(a_lab, b_lab)
        np.testing.assert_array_equal(a_t, b_t)
        c_img, _, _ = _stream(seed=4)
        assert not np.array_equal(a_img, c_img)

    def test_zero_severity_matches_clean_stream(self):
        clean_img, clean_lab, _ = _stream(schedule=None)
        zero = DriftSchedule(kind="rotation", severity=0.0)
        img, lab, _ = _stream(schedule=zero)
        np.testing.assert_array_equal(clean_img, img)
        np.testing.assert_array_equal(clean_lab, lab)

    def test_rotation_moves_pixels_not_labels(self):
        sched = DriftSchedule(kind="rotation", severity=1.0, start=0.0,
                              ramp=0.5)
        clean_img, clean_lab, _ = _stream(n=6, schedule=None)
        img, lab, _ = _stream(n=6, schedule=sched)
        np.testing.assert_array_equal(clean_lab, lab)  # label-preserving
        assert not np.array_equal(clean_img[-1], img[-1])

    def test_shapes_and_timeline(self):
        img, lab, t = _stream(n=5, size=32)
        assert img.shape == (5, 3, 32, 32)
        assert lab.shape == (5,) and lab.dtype == np.int64
        np.testing.assert_allclose(t, np.linspace(0, 1, 5))


# ----------------------------------------------------------------------
class TestSampleTap:
    def test_offer_copies_and_len_tracks(self):
        tap = SampleTap(capacity=4)
        sample = np.ones((3, 2, 2), np.float32)
        tap.offer(sample, 1)
        sample[:] = 7.0  # caller mutates after the fact
        images, labels = tap.sample(1, np.random.default_rng(0))
        np.testing.assert_array_equal(images[0], 1.0)
        assert labels[0] == 1 and len(tap) == 1

    def test_overflow_drops_oldest(self):
        tap = SampleTap(capacity=2)
        for label in range(4):
            tap.offer(np.full((2,), label, np.float32), label)
        snap = tap.snapshot()
        assert snap == {"capacity": 2, "size": 2, "offered": 4,
                        "dropped": 2}
        images, labels = tap.sample(2, np.random.default_rng(0))
        assert set(labels.tolist()) == {2, 3}  # newest two survive
        np.testing.assert_array_equal(images.ravel(),
                                      np.repeat(sorted(labels), 2))

    def test_sample_is_seeded_and_bounded(self):
        tap = SampleTap(capacity=8)
        for label in range(5):
            tap.offer(np.zeros(2, np.float32), label)
        assert tap.sample(3, np.random.default_rng(1)) is not None
        a = tap.sample(3, np.random.default_rng(7))[1]
        b = tap.sample(3, np.random.default_rng(7))[1]
        np.testing.assert_array_equal(a, b)
        _, labels = tap.sample(99, np.random.default_rng(0))
        assert len(labels) == 5  # clamped to fill level

    def test_empty_tap_returns_none(self):
        tap = SampleTap(capacity=2)
        assert tap.sample(1, np.random.default_rng(0)) is None
        with pytest.raises(ValueError, match="capacity"):
            SampleTap(capacity=0)


# ----------------------------------------------------------------------
class TestOnlineTrainer:
    def test_only_adapted_params_move(self):
        model = build_model("ode_botnet", profile="tiny", seed=0)
        frozen_before = {
            name: np.array(p.data)
            for name, p in model.named_parameters()
            if not name.startswith(DEFAULT_ADAPT_PREFIXES)
        }
        adapted_before = {
            name: np.array(p.data)
            for name, p in model.named_parameters()
            if name.startswith(DEFAULT_ADAPT_PREFIXES)
        }
        trainer = OnlineTrainer(model, lr=0.1, seed=0)
        images, labels, _ = _stream(n=4)
        trainer.step(images, labels)
        for name, p in model.named_parameters():
            if name in frozen_before:
                np.testing.assert_array_equal(
                    p.data, frozen_before[name],
                    err_msg=f"frozen param {name} moved",
                )
        assert any(
            not np.array_equal(model.state_dict()[name], before)
            for name, before in adapted_before.items()
        ), "no adapted parameter moved"

    def test_bn_running_stats_stay_frozen(self):
        model = build_model("ode_botnet", profile="tiny", seed=0)
        before = {
            name: np.array(value)
            for name, value in model.state_dict().items()
            if "running" in name
        }
        assert before, "expected BatchNorm running stats in state"
        trainer = OnlineTrainer(model, seed=0)
        images, labels, _ = _stream(n=4)
        trainer.step(images, labels)
        after = model.state_dict()
        for name, value in before.items():
            np.testing.assert_array_equal(after[name], value)

    def test_step_logs_and_history(self):
        model = build_model("ode_botnet", profile="tiny", seed=0)
        trainer = OnlineTrainer(model, seed=0)
        images, labels, _ = _stream(n=4)
        logs = trainer.step(images, labels)
        assert set(logs) >= {"loss", "accuracy", "batch", "step_seconds"}
        assert logs["batch"] == 4
        assert trainer.steps == 1
        assert trainer.history.steps[0][1]["loss"] == logs["loss"]
        assert trainer.history.series("loss") == [logs["loss"]]

    def test_step_from_tap(self):
        model = build_model("ode_botnet", profile="tiny", seed=0)
        trainer = OnlineTrainer(model, batch_size=2, seed=0)
        tap = SampleTap(capacity=8)
        assert trainer.step_from(tap) is None
        images, labels, _ = _stream(n=3)
        for img, lab in zip(images, labels):
            tap.offer(img, lab)
        logs = trainer.step_from(tap)
        assert logs is not None and logs["batch"] == 2

    def test_no_matching_prefix_raises(self):
        model = build_model("ode_botnet", profile="tiny", seed=0)
        with pytest.raises(ValueError, match="no parameter matches"):
            adapt_parameters(model, prefixes=("nonexistent.",))


# ----------------------------------------------------------------------
class TestAdaptConfig:
    def test_validation(self):
        with pytest.raises(ValueError, match="lr"):
            AdaptConfig(lr=0.0)
        with pytest.raises(ValueError, match="batch_size"):
            AdaptConfig(batch_size=0)
        with pytest.raises(ValueError, match="tap_capacity"):
            AdaptConfig(tap_capacity=4, batch_size=16)
        with pytest.raises(ValueError, match="prefixes"):
            AdaptConfig(prefixes=())

    def test_session_config_resolves_adapt(self):
        cfg = SessionConfig(adapt=True)
        assert isinstance(cfg.adapt, AdaptConfig)
        custom = AdaptConfig(lr=0.01)
        assert SessionConfig(adapt=custom).adapt is custom
        assert SessionConfig().adapt is None
        with pytest.raises(ValueError, match="adapt"):
            SessionConfig(adapt="yes")


# ----------------------------------------------------------------------
class TestWeightPublisher:
    def test_swap_moves_every_replica_and_serving_tracks(self):
        pool = ReplicaPool.build("ode_botnet", "tiny", 2, seed=0)
        try:
            x = _stream(n=3)[0]
            before = pool.replicas[0].run(x)
            new_model = build_model("ode_botnet", profile="tiny", seed=99)
            publisher = WeightPublisher(pool)
            info = publisher.publish(new_model.state_dict())
            assert info["replicas"] == 2
            assert {r.weights_version for r in pool} == {info["version"]}
            after = [r.run(x) for r in pool.replicas]
            # both replicas agree on the new generation's outputs...
            np.testing.assert_array_equal(after[0], after[1])
            # ...which differ from the old generation's
            assert not np.array_equal(before, after[0])
            assert publisher.snapshot()["swaps"] == 1
        finally:
            pool.close()

    def test_shared_store_swap_bumps_once(self):
        pool = ReplicaPool.build("ode_botnet", "tiny", 2, seed=0,
                                 shared_weights=True)
        try:
            state = build_model("ode_botnet", profile="tiny",
                                seed=99).state_dict()
            info = WeightPublisher(pool).publish(state)
            assert pool.weight_store.version == info["version"] == 2
            views = pool.weight_store.arrays()
            for name, value in state.items():
                np.testing.assert_array_equal(views[name],
                                              np.asarray(value))
        finally:
            pool.close()

    def test_publish_moves_tier_sessions_without_store(self):
        """Degrade-tier sessions hold private weight copies; a publish
        must move them too, not just the primary (review: stale-tier
        swap bug)."""
        from repro.serve.tiers import BUILTIN_TIERS

        tiers = ("reduced", "int8")
        pool = ReplicaPool.build("ode_botnet", "tiny", 1, seed=0,
                                 tiers=tiers)
        try:
            x = _stream(n=2)[0]
            replica = pool.replicas[0]
            before = {t: replica.run(x, tier=t) for t in tiers}
            state = build_model("ode_botnet", profile="tiny",
                                seed=99).state_dict()
            WeightPublisher(pool).publish(state)
            for tier in tiers:
                after = replica.run(x, tier=tier)
                assert not np.array_equal(before[tier], after), tier
                # bit-exact with a session built directly on the new
                # generation: the tier genuinely serves the new weights
                expected = BUILTIN_TIERS[tier].build_session(
                    "ode_botnet", "tiny", state=state,
                ).predict_batch(x)
                np.testing.assert_array_equal(after, expected, err_msg=tier)
        finally:
            pool.close()

    def test_shared_store_publish_moves_tier_sessions(self):
        """With a store the tier floats are adopted onto the mapping,
        so the in-place store write + refresh moves every rung."""
        from repro.serve.tiers import BUILTIN_TIERS

        tiers = ("reduced", "int8")
        pool = ReplicaPool.build("ode_botnet", "tiny", 2, seed=0,
                                 shared_weights=True, tiers=tiers)
        try:
            x = _stream(n=2)[0]
            before = {t: pool.replicas[0].run(x, tier=t) for t in tiers}
            state = build_model("ode_botnet", profile="tiny",
                                seed=99).state_dict()
            WeightPublisher(pool).publish(state)
            for tier in tiers:
                expected = BUILTIN_TIERS[tier].build_session(
                    "ode_botnet", "tiny", state=state,
                ).predict_batch(x)
                for replica in pool:
                    after = replica.run(x, tier=tier)
                    assert not np.array_equal(before[tier], after), tier
                    np.testing.assert_array_equal(after, expected,
                                                  err_msg=tier)
        finally:
            pool.close()

    def test_process_shared_store_publish_moves_forked_tiers(self):
        """Forked workers must re-derive quantized tier weights from
        the shared floats after a swap (refresh sentinel over the
        pipe)."""
        from repro.serve.tiers import BUILTIN_TIERS

        pool = ReplicaPool.build("ode_botnet", "tiny", 1, seed=0,
                                 mode="process", shared_weights=True,
                                 tiers=("int8",))
        try:
            x = _stream(n=2)[0]
            replica = pool.replicas[0]
            before = replica.run(x, tier="int8")
            state = build_model("ode_botnet", profile="tiny",
                                seed=99).state_dict()
            info = WeightPublisher(pool).publish(state)
            assert replica.weights_version == info["version"]
            after = replica.run(x, tier="int8")
            assert not np.array_equal(before, after)
            expected = BUILTIN_TIERS["int8"].build_session(
                "ode_botnet", "tiny", state=state,
            ).predict_batch(x)
            np.testing.assert_array_equal(after, expected)
        finally:
            pool.close()

    def test_addressless_publishable_replicas_each_receive_state(self):
        """Publish-capable replicas without an address must not
        collapse onto one dedupe key — each gets the state itself."""

        class _Publishable:
            def __init__(self, name):
                self.name = name
                self.healthy = True
                self.outstanding = 0
                self.weights_version = 1
                self.published = []

            def publish(self, state):
                self.published.append(state)
                self.weights_version += 1
                return self.weights_version

            def close(self):
                pass

        a, b = _Publishable("a"), _Publishable("b")
        pool = ReplicaPool([a, b])
        info = WeightPublisher(pool).publish({"w": np.zeros(1)})
        assert len(a.published) == 1 and len(b.published) == 1
        assert info["replicas"] == 2

    def test_fork_pool_without_store_is_a_publish_error(self):
        pool = ReplicaPool.build("ode_botnet", "tiny", 1, mode="process")
        try:
            state = build_model("ode_botnet", profile="tiny",
                                seed=1).state_dict()
            with pytest.raises(PublishError, match="shared_weights=True"):
                WeightPublisher(pool).publish(state)
        finally:
            pool.close()

    def test_swap_records_trace_span(self):
        from repro.trace import Tracer

        pool = ReplicaPool.build("ode_botnet", "tiny", 1, seed=0)
        tracer = Tracer()
        try:
            state = build_model("ode_botnet", profile="tiny",
                                seed=1).state_dict()
            WeightPublisher(pool, tracer=tracer).publish(state)
            spans = [s for s in tracer.spans()
                     if s.name == "weights.swap"]
            assert len(spans) == 1
            assert spans[0].attrs["version"] == 2
            assert spans[0].attrs["replicas"] == 1
        finally:
            pool.close()


# ----------------------------------------------------------------------
class TestAdaptationController:
    def test_requires_registry_build_info(self):
        from repro.runtime import InferenceSession
        from repro.serve import Replica

        pool = ReplicaPool([Replica("a", InferenceSession(lambda b: b))])
        with pytest.raises(ValueError, match="registry build info"):
            AdaptationController(pool)

    def test_step_and_publish_roundtrip(self):
        pool = ReplicaPool.build("ode_botnet", "tiny", 1, seed=0)
        try:
            config = AdaptConfig(batch_size=2, min_samples=2,
                                 tap_capacity=8, publish_every=1)
            controller = AdaptationController(pool, config=config)
            images, labels, _ = _stream(n=4)
            for img, lab in zip(images, labels):
                controller.tap.offer(img, lab)
            assert controller.step_once() is not None
            info = controller.publish()
            assert info["version"] == 2
            # the publish callback landed in the trainer's History
            assert controller.trainer.history.publishes[0][0] == 2
            snap = controller.snapshot()
            assert snap["trainer"]["steps"] == 1
            assert snap["publisher"]["swaps"] == 1
            assert snap["error"] is None
            controller.close()
        finally:
            pool.close()

    def test_server_build_wires_and_swaps_live(self):
        config = SessionConfig(adapt=AdaptConfig(
            batch_size=2, min_samples=2, tap_capacity=16,
            publish_every=1,
        ))
        server = Server.build("ode_botnet", "tiny", 1, config=config)
        try:
            assert server.adaptation is not None
            images, labels, _ = _stream(n=6)
            futs = [
                server.submit(img, label=lab)
                for img, lab in zip(images, labels)
            ]
            rows = [f.result(timeout=60) for f in futs]
            assert all(r is not None for r in rows)
            # labelled submits landed in the tap; wait for the
            # background loop to step and swap at least once
            deadline = 30.0
            import time as _time

            t0 = _time.perf_counter()
            while _time.perf_counter() - t0 < deadline:
                snap = server.metrics()["adaptation"]
                if snap["publisher"]["swaps"] >= 1:
                    break
                _time.sleep(0.02)
            assert snap["error"] is None
            assert snap["tap"]["offered"] == 6
            assert snap["publisher"]["swaps"] >= 1
            # serving still answers after the swap
            assert server.predict(images[0]) is not None
            assert "adaptation [running]" in server.metrics_report()
        finally:
            server.close()
        assert server.metrics()["adaptation"]["running"] is False

    def test_unlabelled_submits_bypass_the_tap(self):
        config = SessionConfig(adapt=True)
        server = Server.build("ode_botnet", "tiny", 1, config=config)
        try:
            server.predict(_stream(n=1)[0][0])
            assert server.metrics()["adaptation"]["tap"]["offered"] == 0
        finally:
            server.close()


# ----------------------------------------------------------------------
class TestLoadgenAccuracy:
    def test_labelled_run_records_outcomes_and_windows(self):
        server = Server.build("ode_botnet", "tiny", 1)
        try:
            images, labels, _ = _stream(n=10)
            offsets = np.linspace(0.0, 0.2, 10)
            report = run_load(server, images, offsets, seed=0,
                              labels=labels)
            assert report.completed == 10
            assert len(report.outcomes) == 10
            windows = report.accuracy_windows(windows=2)
            assert [w["evaluated"] for w in windows] == [5, 5]
            assert all(0.0 <= w["accuracy"] <= 1.0 for w in windows)
            assert 0.0 <= report.final_accuracy(0.5) <= 1.0
            assert "accuracy:" in report.summary()
        finally:
            server.close()

    def test_labels_must_align_with_samples(self):
        server = Server.build("ode_botnet", "tiny", 1)
        try:
            images = _stream(n=4)[0]
            with pytest.raises(ValueError, match="align"):
                run_load(server, images, np.zeros(4), seed=0,
                         labels=np.zeros(3, np.int64))
        finally:
            server.close()

    def test_unlabelled_report_has_no_accuracy_surface(self):
        from repro.serve.loadgen import LoadReport

        report = LoadReport(offered=4)
        assert report.accuracy_windows() == []
        assert np.isnan(report.final_accuracy())
        assert "accuracy:" not in report.summary()
