"""Tests for deployment bundles, the HLS testbench generator and
model_summary."""

import os

import numpy as np
import pytest

from repro.experiments.designs import (
    FIXED_DEFAULT,
    FLOAT32,
    proposed_mhsa_design,
    proposed_mhsa_module,
)
from repro.fixedpoint import QFormat, QuantizedMHSA2d
from repro.fpga import (
    export_deployment_bundle,
    generate_testbench,
    load_deployment_bundle,
)
from repro.models import build_model
from repro.nn import model_summary


class TestDeploymentBundle:
    def test_roundtrip_bit_exact(self, tmp_path, rng):
        m = proposed_mhsa_module(seed=3)
        design = proposed_mhsa_design(FIXED_DEFAULT)
        path = tmp_path / "bundle.npz"
        export_deployment_bundle(m, design, path)
        deployed = load_deployment_bundle(path)
        x = rng.normal(size=(2, 64, 6, 6)).astype(np.float32)
        ref = QuantizedMHSA2d(m, QFormat(32, 16), QFormat(24, 8)).forward(x)
        np.testing.assert_array_equal(deployed(x), ref)

    def test_bundle_is_self_describing(self, tmp_path):
        m = proposed_mhsa_module()
        export_deployment_bundle(
            m, proposed_mhsa_design(FIXED_DEFAULT), tmp_path / "b.npz"
        )
        deployed = load_deployment_bundle(tmp_path / "b.npz")
        assert deployed.meta["channels"] == 64
        assert deployed.meta["feature_fmt"] == "32(16)"
        assert deployed.meta["attention_activation"] == "relu"

    def test_float_design_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            export_deployment_bundle(
                proposed_mhsa_module(), proposed_mhsa_design(FLOAT32),
                tmp_path / "b.npz",
            )

    def test_bundle_has_integer_weights(self, tmp_path):
        export_deployment_bundle(
            proposed_mhsa_module(), proposed_mhsa_design(FIXED_DEFAULT),
            tmp_path / "b.npz",
        )
        archive = np.load(tmp_path / "b.npz")
        assert archive["w_q"].dtype == np.int64
        # raw values fit the 24-bit parameter format
        assert np.abs(archive["w_q"]).max() < 2 ** 23


class TestTestbench:
    def test_artifacts_written(self, tmp_path):
        m = proposed_mhsa_module()
        arts = generate_testbench(m, proposed_mhsa_design(FIXED_DEFAULT),
                                  str(tmp_path), n_vectors=2)
        for path in arts.values():
            assert os.path.exists(path)

    def test_golden_vectors_match_accelerator(self, tmp_path, rng):
        from repro.fpga import MHSAAccelerator

        m = proposed_mhsa_module(seed=1)
        design = proposed_mhsa_design(FIXED_DEFAULT)
        arts = generate_testbench(m, design, str(tmp_path), n_vectors=1, seed=5)
        x = np.loadtxt(arts["golden_in"]).reshape(1, 64, 6, 6).astype(np.float32)
        golden = np.loadtxt(arts["golden_out"]).reshape(1, 64, 6, 6)
        acc = MHSAAccelerator(m, design)
        np.testing.assert_allclose(acc.run(x), golden, rtol=1e-5, atol=1e-6)

    def test_testbench_references_kernel(self, tmp_path):
        arts = generate_testbench(
            proposed_mhsa_module(), proposed_mhsa_design(FIXED_DEFAULT),
            str(tmp_path),
        )
        src = open(arts["testbench"]).read()
        assert "mhsa_kernel" in src
        assert "golden_in.txt" in src

    def test_float_design_golden(self, tmp_path):
        arts = generate_testbench(
            proposed_mhsa_module(), proposed_mhsa_design(FLOAT32),
            str(tmp_path),
        )
        assert os.path.exists(arts["golden_out"])


class TestModelSummary:
    def test_summary_totals(self):
        model = build_model("ode_botnet", profile="tiny")
        text = model_summary(model, (3, 32, 32))
        assert f"{model.num_parameters():,}" in text
        assert "Conv2d" in text
        assert "MHSA2d" in text

    def test_shows_call_counts_for_ode_blocks(self):
        model = build_model("odenet", profile="tiny", steps=2)
        text = model_summary(model, (3, 32, 32))
        # dynamics layers are invoked `steps` times
        lines = [l for l in text.splitlines() if "block1.func.conv1" in l]
        assert lines
        assert lines[0].rstrip().endswith("2")

    def test_model_untouched(self, rng):
        from repro.tensor import Tensor, no_grad

        model = build_model("odenet", profile="tiny").eval()
        x = Tensor(rng.normal(size=(1, 3, 32, 32)).astype(np.float32))
        with no_grad():
            before = model(x).data
        model_summary(model, (3, 32, 32))
        with no_grad():
            after = model(x).data
        np.testing.assert_array_equal(before, after)

    def test_training_mode_restored(self):
        model = build_model("odenet", profile="tiny")
        model.train()
        model_summary(model, (3, 32, 32))
        assert model.training
