"""Smoke tests: the example scripts run end to end.

Heavy examples are exercised with reduced arguments where they accept
them; the pure-analysis ones run as-is (they are fast).
"""

import os
import subprocess
import sys

import pytest

EXAMPLES = os.path.join(os.path.dirname(__file__), "..", "examples")


def _run(script, *args, timeout=300):
    return subprocess.run(
        [sys.executable, os.path.join(EXAMPLES, script), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )


class TestExamples:
    def test_fpga_accelerator(self):
        result = _run("fpga_accelerator.py")
        assert result.returncode == 0, result.stderr[-2000:]
        assert "Table IX" in result.stdout
        assert "energy efficiency" in result.stdout

    def test_train_proposed_model_short(self):
        result = _run(
            "train_proposed_model.py", "--profile", "tiny", "--epochs", "3",
            "--train-per-class", "15",
        )
        assert result.returncode == 0, result.stderr[-2000:]
        assert "best test accuracy" in result.stdout

    def test_quantization_sweep_short(self):
        result = _run("quantization_sweep.py", "--profile", "tiny",
                      "--epochs", "3")
        assert result.returncode == 0, result.stderr[-2000:]
        assert "Table VIII" in result.stdout
        assert "32(16)-24(8)" in result.stdout

    def test_serve_demo_short(self):
        result = _run("serve_demo.py", "--duration", "0.5")
        assert result.returncode == 0, result.stderr[-2000:]
        assert "match direct session: True" in result.stdout
        assert "hung futures: 0" in result.stdout
        assert "=== serve metrics ===" in result.stdout

    def test_quickstart(self):
        result = _run("quickstart.py")
        assert result.returncode == 0, result.stderr[-2000:]
        assert "97." in result.stdout  # the headline reduction
        assert "fits ZCU104: True" in result.stdout
