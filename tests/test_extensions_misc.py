"""Tests for AlterNet, the layer profiler, URAM spill and the CLIs."""

import numpy as np
import pytest

from repro import nn
from repro.experiments.designs import FIXED_DEFAULT, FLOAT32, botnet_mhsa_design
from repro.models import alternet50, build_model
from repro.profiling import format_profile, profile_layers
from repro.tensor import Tensor, no_grad


class TestAlterNet:
    def test_forward(self, rng):
        m = build_model("alternet50", profile="tiny")
        out = m(Tensor(rng.normal(size=(2, 3, 32, 32)).astype(np.float32)))
        assert out.shape == (2, 10)

    def test_one_mhsa_per_stage(self):
        m = build_model("alternet50", profile="tiny")
        for stage in (m.stage1, m.stage2, m.stage3, m.stage4):
            mhsas = [x for x in stage.modules() if isinstance(x, nn.MHSA2d)]
            assert len(mhsas) == 1
            # it is the last block of the stage
            last_block = stage[len(stage) - 1]
            assert any(isinstance(x, nn.MHSA2d) for x in last_block.modules())

    def test_size_between_resnet_and_botnet(self):
        """AlterNet touches fewer convs than BoTNet (only stage ends) so
        it sits between ResNet50 and BoTNet50 in parameter count."""
        r = build_model("resnet50", profile="paper").num_parameters()
        a = build_model("alternet50", profile="paper").num_parameters()
        b = build_model("botnet50", profile="paper").num_parameters()
        assert b < a < r

    def test_trains_one_step(self, rng):
        from repro.train import SGD, CrossEntropyLoss

        m = build_model("alternet50", profile="tiny")
        loss = CrossEntropyLoss()(
            m(Tensor(rng.normal(size=(2, 3, 32, 32)).astype(np.float32))),
            np.array([1, 2]),
        )
        loss.backward()
        SGD(m.parameters(), lr=0.01).step()


class TestLayerProfiler:
    def test_profile_structure(self, rng):
        model = build_model("ode_botnet", profile="tiny").eval()
        x = Tensor(rng.normal(size=(1, 3, 32, 32)).astype(np.float32))
        timings, total = profile_layers(model, x, repeats=2)
        assert total > 0
        assert all(t.total_s >= 0 for t in timings)
        # sorted descending
        totals = [t.total_s for t in timings]
        assert totals == sorted(totals, reverse=True)
        # ODE dynamics layers are called `steps` times per forward
        conv_entries = [t for t in timings if "block1.func.conv1" in t.name]
        assert conv_entries
        assert conv_entries[0].calls == model.block1.steps

    def test_forward_restored(self, rng):
        model = build_model("odenet", profile="tiny").eval()
        x = Tensor(rng.normal(size=(1, 3, 32, 32)).astype(np.float32))
        with no_grad():
            before = model(x).data
        profile_layers(model, x, repeats=1)
        with no_grad():
            after = model(x).data
        np.testing.assert_array_equal(before, after)

    def test_format(self, rng):
        model = build_model("odenet", profile="tiny").eval()
        x = Tensor(rng.normal(size=(1, 3, 32, 32)).astype(np.float32))
        timings, total = profile_layers(model, x, repeats=1)
        text = format_profile(timings, total, top=5)
        assert "layer" in text
        assert "total forward" in text


class TestUramSpill:
    def test_float_naive_fits_with_uram(self):
        """Table VII footnote: the float BoTNet build is implementable
        if URAMs are used."""
        design = botnet_mhsa_design(FLOAT32, shared_weight_buffer=False)
        assert not design.resource_report().fits()
        with_uram = design.resource_report(allow_uram=True)
        assert with_uram.fits()
        assert 0 < with_uram.uram <= design.device.uram

    def test_no_spill_when_design_fits(self):
        design = botnet_mhsa_design(FIXED_DEFAULT)
        rep = design.resource_report(allow_uram=True)
        assert rep.uram == 0

    def test_uram_in_utilization_dict(self):
        design = botnet_mhsa_design(FLOAT32, shared_weight_buffer=False)
        rep = design.resource_report(allow_uram=True)
        assert "URAM" in rep.utilization()


class TestClis:
    def test_fpga_report_cli(self, capsys):
        from repro.fpga.__main__ import main

        main(["report", "--config", "proposed", "--arith", "fixed"])
        out = capsys.readouterr().out
        assert "Performance & Resource Estimates" in out

    def test_fpga_kernel_cli(self, capsys):
        from repro.fpga.__main__ import main

        main(["kernel", "--config", "botnet"])
        out = capsys.readouterr().out
        assert "ap_fixed<32, 16>" in out

    def test_fpga_compare_cli(self, capsys):
        from repro.fpga.__main__ import main

        main(["compare"])
        out = capsys.readouterr().out
        assert "CPU" in out and "FPGA (fixed)" in out

    def test_train_cli_smoke(self, tmp_path, capsys):
        from repro.train.__main__ import main

        ckpt = str(tmp_path / "m.npz")
        main([
            "--model", "odenet", "--profile", "tiny", "--epochs", "1",
            "--train-per-class", "5", "--test-per-class", "5",
            "--no-augment", "--checkpoint", ckpt,
        ])
        out = capsys.readouterr().out
        assert "best test accuracy" in out
        import os

        assert os.path.exists(ckpt)

    def test_experiments_md_table(self):
        from repro.experiments.__main__ import md_table

        text = md_table(["a", "b"], [[1, 2]])
        assert text.splitlines()[0] == "| a | b |"
        assert "| 1 | 2 |" in text


class TestTrainCliSpectrogram:
    def test_spectrogram_dataset_path(self, tmp_path, capsys):
        from repro.train.__main__ import main

        main([
            "--dataset", "spectrogram", "--profile", "tiny", "--epochs", "1",
            "--train-per-class", "5", "--test-per-class", "5",
            "--checkpoint", str(tmp_path / "m.npz"),
        ])
        out = capsys.readouterr().out
        assert "best test accuracy" in out
