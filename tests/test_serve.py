"""repro.serve: admission control, scheduling, replicas, loadgen.

The serving layer's contract, pinned:

* responses are bit-exact with a direct ``InferenceSession.predict``
  (the layer reschedules computation, never changes it);
* every submitted future resolves — to a row or to a *typed* error —
  under overload, deadlines, replica failure and shutdown alike;
* the admission queue is strictly bounded under every shedding policy;
* priority classes drain high-first; deadlines fail fast;
* the load harness is deterministic given a seed.

Fast paths use stub sessions (instant callables wrapped in
``InferenceSession``); bit-exactness uses the real tiny proposed model.
"""

import threading
import time

import numpy as np
import pytest

from repro.models import build_model, reduced_profile
from repro.models.registry import PROFILES
from repro.runtime import InferenceSession, SessionStats
from repro.serve import (
    AdmissionQueue,
    DeadlineExceeded,
    Priority,
    ProcessReplica,
    QueueFull,
    Replica,
    ReplicaPool,
    ReplicaUnavailable,
    Request,
    Server,
    ServerStopped,
    arrival_offsets,
    pick_priorities,
    render_report,
    run_load,
)


def _echo_session(scale=1.0, delay_s=0.0):
    """A stub InferenceSession: returns scale * row-sum, optional delay."""

    def fn(batch):
        if delay_s:
            time.sleep(delay_s)
        batch = np.asarray(batch)
        return scale * batch.reshape(batch.shape[0], -1).sum(axis=1)[:, None]

    return InferenceSession(fn)


def _failing_session(exc=None):
    def fn(batch):
        raise exc or RuntimeError("replica exploded")

    return InferenceSession(fn)


def _samples(n=8, seed=0, shape=(4,)):
    rng = np.random.default_rng(seed)
    return rng.standard_normal((n, *shape)).astype(np.float32)


# ----------------------------------------------------------------------
class TestRequest:
    def test_resolve_and_fail_report_delivery(self):
        req = Request(np.zeros(2, np.float32))
        assert req.resolve(1.0) is True
        assert req.resolve(2.0) is False  # already resolved: no-op
        assert req.fail(RuntimeError("late")) is False
        assert req.future.result(timeout=1) == 1.0

    def test_cancelled_future_is_a_noop_not_an_error(self):
        req = Request(np.zeros(2, np.float32))
        assert req.future.cancel()
        assert req.resolve(1.0) is False
        assert req.fail(RuntimeError("late")) is False
        assert req.future.cancelled()


# ----------------------------------------------------------------------
class TestAdmissionQueue:
    def _request(self, q, priority=Priority.NORMAL, deadline_ms=None):
        return Request(np.zeros(2, np.float32), priority=priority,
                       deadline_ms=deadline_ms, seq=q.next_seq())

    def test_reject_newest_bounds_queue(self):
        q = AdmissionQueue(2, "reject")
        first = [self._request(q) for _ in range(2)]
        for req in first:
            assert q.offer(req)
        extra = self._request(q)
        assert not q.offer(extra)
        with pytest.raises(QueueFull):
            extra.future.result(timeout=1)
        assert q.depth == 2
        snap = q.snapshot()
        assert snap["shed_incoming"] == 1 and snap["high_water"] == 2

    def test_reject_oldest_evicts_fifo_victim(self):
        q = AdmissionQueue(2, "reject-oldest")
        oldest = self._request(q)
        second = self._request(q)
        q.offer(oldest)
        q.offer(second)
        newest = self._request(q)
        assert q.offer(newest)
        with pytest.raises(QueueFull):
            oldest.future.result(timeout=1)
        assert q.depth == 2
        assert q.snapshot()["shed_evicted"] == 1

    def test_reject_oldest_never_evicts_higher_priority(self):
        q = AdmissionQueue(1, "reject-oldest")
        vip = self._request(q, priority=Priority.HIGH)
        q.offer(vip)
        low = self._request(q, priority=Priority.LOW)
        assert not q.offer(low)
        with pytest.raises(QueueFull):
            low.future.result(timeout=1)
        assert not vip.future.done()

    def test_degrade_flags_overflow_then_hard_caps(self):
        q = AdmissionQueue(2, "degrade", degrade_headroom=2)
        reqs = [self._request(q) for _ in range(5)]
        admitted = [q.offer(r) for r in reqs]
        assert admitted == [True, True, True, True, False]
        assert [r.degraded for r in reqs[:4]] == [False, False, True, True]
        with pytest.raises(QueueFull):
            reqs[4].future.result(timeout=1)
        snap = q.snapshot()
        assert snap["degraded_admissions"] == 2
        assert snap["depth"] == 4  # bounded at capacity + headroom

    def test_next_batch_drains_high_priority_first(self):
        q = AdmissionQueue(8)
        low = self._request(q, priority=Priority.LOW)
        normal = self._request(q, priority=Priority.NORMAL)
        high = self._request(q, priority=Priority.HIGH)
        for req in (low, normal, high):
            q.offer(req)
        batch = q.next_batch(3, max_wait_s=0.01)
        assert [r.priority for r in batch] == [
            Priority.HIGH, Priority.NORMAL, Priority.LOW,
        ]

    def test_offer_after_close_fails_typed(self):
        q = AdmissionQueue(2)
        q.close()
        req = self._request(q)
        assert not q.offer(req)
        with pytest.raises(ServerStopped):
            req.future.result(timeout=1)
        assert q.next_batch(4, max_wait_s=0.01) == []


# ----------------------------------------------------------------------
class TestReplicaPool:
    def test_least_outstanding_routing(self):
        pool = ReplicaPool([
            Replica("a", _echo_session()),
            Replica("b", _echo_session()),
        ])
        a = pool.acquire()
        b = pool.acquire()
        assert {a.name, b.name} == {"a", "b"}  # spread, not pile-up
        pool.release(a)
        assert pool.acquire().name == a.name  # the idle one again

    def test_unhealthy_replica_leaves_routing(self):
        bad = Replica("bad", _failing_session(), unhealthy_after=2)
        good = Replica("good", _echo_session())
        pool = ReplicaPool([bad, good])
        x = _samples(2)
        for _ in range(2):
            with pytest.raises(RuntimeError):
                bad.run(x)
        assert not bad.healthy
        assert pool.acquire().name == "good"
        health = pool.health()
        assert health["bad"]["consecutive_failures"] == 2
        pool.revive("bad")
        assert pool.health()["bad"]["healthy"]

    def test_all_unhealthy_raises_typed(self):
        replica = Replica("r0", _failing_session(), unhealthy_after=1)
        pool = ReplicaPool([replica])
        with pytest.raises(RuntimeError):
            replica.run(_samples(1))
        with pytest.raises(ReplicaUnavailable):
            pool.acquire()

    def test_build_shares_weights_and_is_bit_exact(self):
        pool = ReplicaPool.build("ode_botnet", "tiny", 2, seed=0)
        x = _samples(3, shape=(3, 32, 32))
        direct = InferenceSession(
            build_model("ode_botnet", profile="tiny", seed=0,
                        inference=True)
        ).predict_batch(x)
        for replica in pool:
            assert np.array_equal(replica.run(x), direct)

    def test_degraded_session_reuses_weights(self):
        pool = ReplicaPool.build("ode_botnet", "tiny", 1, seed=0,
                                 degraded=True)
        replica = pool.replicas[0]
        x = _samples(2, shape=(3, 32, 32))
        full = replica.run(x)
        degraded = replica.run(x, degraded=True)
        reference = InferenceSession(
            build_model("ode_botnet", profile=reduced_profile("tiny"),
                        seed=0, inference=True)
        ).predict_batch(x)
        assert np.array_equal(degraded, reference)
        assert full.shape == degraded.shape
        assert replica.degraded_dispatches == 1

    def test_merged_stats_uses_merge(self):
        pool = ReplicaPool([
            Replica("a", _echo_session()),
            Replica("b", _echo_session()),
        ])
        pool.replicas[0].run(_samples(4))
        pool.replicas[1].run(_samples(2))
        merged = pool.merged_stats()
        assert isinstance(merged, SessionStats)
        assert merged.snapshot()["requests"] == 6

    def test_process_timeout_never_returns_stale_batch(self):
        # regression: a timed-out request leaves the worker's eventual
        # reply buffered in the pipe.  The next run() must discard that
        # stale reply (matched by sequence id), not hand the previous
        # batch's outputs to the new batch's callers.
        def marker_sleep(batch):
            batch = np.asarray(batch)
            delay = float(batch.flat[0])
            if delay > 0:
                time.sleep(delay)
            return batch * 2.0

        replica = ProcessReplica(
            "p0", InferenceSession(marker_sleep), timeout_s=0.1,
        )
        try:
            slow = np.full((3, 2), 0.4, np.float32)  # sleeps 0.4 s
            with pytest.raises(TimeoutError):
                replica.run(slow)
            assert replica.consecutive_failures == 1
            replica.timeout_s = 30.0  # plenty for the retry leg
            fast = np.zeros((2, 2), np.float32)
            out = replica.run(fast)
            # the buggy path returned slow * 2 (3 rows of 0.8) here
            np.testing.assert_array_equal(out, fast * 2.0)
            assert replica.consecutive_failures == 0
        finally:
            replica.close()

    def test_process_mode_bit_exact_and_joins(self):
        pool = ReplicaPool.build("ode_botnet", "tiny", 1, seed=0,
                                 mode="process")
        x = _samples(2, shape=(3, 32, 32))
        direct = InferenceSession(
            build_model("ode_botnet", profile="tiny", seed=0,
                        inference=True)
        ).predict_batch(x)
        try:
            assert np.array_equal(pool.replicas[0].run(x), direct)
            assert pool.merged_stats().snapshot()["requests"] == 2
        finally:
            pool.close()
        assert not pool.replicas[0]._proc.is_alive()


# ----------------------------------------------------------------------
class TestServer:
    def test_bit_exact_with_direct_session(self):
        x = _samples(6, shape=(3, 32, 32))
        direct = InferenceSession(
            build_model("ode_botnet", profile="tiny", seed=0,
                        inference=True)
        ).predict_batch(x)
        with Server.build("ode_botnet", "tiny", 2, seed=0,
                          max_batch_size=6, max_wait_ms=50.0) as server:
            futures = [server.submit(xi) for xi in x]
            rows = np.stack([f.result(timeout=60) for f in futures])
        for row, ref in zip(rows, direct):
            np.testing.assert_allclose(row, ref, rtol=1e-12, atol=1e-9)

    def test_deadline_fails_fast_without_running_model(self):
        ran = []

        def slow(batch):
            ran.append(len(batch))
            time.sleep(0.2)
            return np.zeros((len(batch), 1), np.float32)

        pool = ReplicaPool([Replica("r0", InferenceSession(slow))])
        with Server(pool, max_batch_size=1, max_wait_ms=0.5) as server:
            blocker = server.submit(np.zeros(2, np.float32))
            fut = server.submit(np.zeros(2, np.float32), deadline_ms=20.0)
            with pytest.raises(DeadlineExceeded) as err:
                fut.result(timeout=30)
            assert err.value.waited_ms >= 20.0
            blocker.result(timeout=30)
        assert len(ran) == 1  # the expired request never reached a replica

    def test_expired_on_submit_fails_immediately(self):
        with Server(ReplicaPool([Replica("r0", _echo_session())])) as server:
            fut = server.submit(np.zeros(2, np.float32), deadline_ms=0.0)
            with pytest.raises(DeadlineExceeded):
                fut.result(timeout=1)

    def test_priority_drains_high_first(self):
        release = threading.Event()
        order = []

        def gated(batch):
            release.wait(timeout=30)
            return np.asarray(batch)[:, :1]

        pool = ReplicaPool([Replica("r0", InferenceSession(gated))])
        with Server(pool, max_batch_size=1, max_wait_ms=0.1) as server:
            blocker = server.submit(np.zeros(2, np.float32))
            time.sleep(0.05)  # let the blocker occupy the only replica
            low = server.submit(np.zeros(2, np.float32),
                                priority=Priority.LOW)
            high = server.submit(np.zeros(2, np.float32),
                                 priority=Priority.HIGH)
            low.add_done_callback(lambda f: order.append("low"))
            high.add_done_callback(lambda f: order.append("high"))
            release.set()
            low.result(timeout=30)
            high.result(timeout=30)
        assert order[0] == "high"

    def test_replica_failure_propagates_then_health_reports(self):
        pool = ReplicaPool(
            [Replica("r0", _failing_session(), unhealthy_after=1)]
        )
        with Server(pool, max_batch_size=2, max_wait_ms=0.5) as server:
            fut = server.submit(np.zeros(2, np.float32))
            with pytest.raises(RuntimeError, match="replica exploded"):
                fut.result(timeout=30)
            deadline = time.time() + 5
            while server.health()["ok"] and time.time() < deadline:
                time.sleep(0.01)
            health = server.health()
            assert not health["ok"]
            # subsequent submits fail typed, not hang
            fut = server.submit(np.zeros(2, np.float32))
            with pytest.raises(ReplicaUnavailable):
                fut.result(timeout=30)

    def test_degrade_policy_serves_overflow_degraded(self):
        full = Replica("r0", _echo_session(scale=1.0, delay_s=0.05),
                       degraded_session=_echo_session(scale=-1.0))
        pool = ReplicaPool([full])
        with Server(pool, max_batch_size=1, max_wait_ms=0.1,
                    queue_capacity=1, shed_policy="degrade",
                    degrade_headroom=4) as server:
            x = np.ones(2, np.float32)
            futures = [server.submit(x) for _ in range(5)]
            rows = [f.result(timeout=30) for f in futures]
        signs = sorted(np.sign(row.sum()) for row in rows)
        assert signs[0] == -1.0  # at least one ran on the degraded session
        assert signs[-1] == 1.0  # and at least one at full quality
        assert server.scheduler.snapshot()["degraded_dispatched"] >= 1

    def test_close_drain_serves_queued_requests(self):
        pool = ReplicaPool([Replica("r0", _echo_session(delay_s=0.02))])
        server = Server(pool, max_batch_size=4, max_wait_ms=0.5)
        futures = [server.submit(np.full(2, i, np.float32))
                   for i in range(8)]
        server.close(drain=True)
        rows = [f.result(timeout=1) for f in futures]  # already resolved
        assert len(rows) == 8
        fut = server.submit(np.zeros(2, np.float32))
        with pytest.raises(ServerStopped):
            fut.result(timeout=1)

    def test_close_no_drain_fails_queued_typed(self):
        release = threading.Event()

        def gated(batch):
            release.wait(timeout=30)
            return np.asarray(batch)[:, :1]

        pool = ReplicaPool([Replica("r0", InferenceSession(gated))])
        server = Server(pool, max_batch_size=1, max_wait_ms=0.1)
        blocker = server.submit(np.zeros(2, np.float32))
        time.sleep(0.05)
        queued = [server.submit(np.zeros(2, np.float32)) for _ in range(4)]
        closer = threading.Thread(target=server.close,
                                  kwargs={"drain": False})
        closer.start()
        time.sleep(0.05)
        release.set()
        closer.join(timeout=30)
        assert not closer.is_alive()
        blocker.result(timeout=1)  # in-flight work still completes
        outcomes = []
        for fut in queued:
            try:
                fut.result(timeout=1)
                outcomes.append("ok")
            except ServerStopped:
                outcomes.append("stopped")
        # everything resolved; at least the tail was failed typed
        assert len(outcomes) == 4
        assert "stopped" in outcomes

    def test_bad_shape_batchmate_fails_whole_group_typed(self):
        # regression: np.stack over a mixed-shape micro-batch raised in
        # the executor thread where ThreadPoolExecutor swallowed it,
        # leaving every batchmate's future pending forever.  The whole
        # dispatch body is fenced now: everyone fails typed, nobody hangs.
        release = threading.Event()

        def gated(batch):
            release.wait(timeout=30)
            batch = np.asarray(batch)
            return batch.reshape(len(batch), -1).sum(axis=1)[:, None]

        pool = ReplicaPool([Replica("r0", InferenceSession(gated))])
        with Server(pool, max_batch_size=8, max_wait_ms=10.0) as server:
            blocker = server.submit(np.zeros(4, np.float32))
            time.sleep(0.05)  # blocker's batch closes, occupies the replica
            good = [server.submit(np.zeros(4, np.float32)) for _ in range(2)]
            bad = server.submit(np.zeros(3, np.float32))  # wrong shape
            release.set()
            blocker.result(timeout=30)
            for fut in (*good, bad):
                with pytest.raises(ValueError):
                    fut.result(timeout=30)
        assert server.scheduler.snapshot()["failed"] == 3

    def test_cancelled_future_does_not_strand_batchmates(self):
        # regression: Future.set_result on a caller-cancelled future
        # raised InvalidStateError mid-resolve-loop, leaving the rest of
        # the batch unresolved
        release = threading.Event()

        def gated(batch):
            release.wait(timeout=30)
            batch = np.asarray(batch)
            return batch.reshape(len(batch), -1).sum(axis=1)[:, None]

        pool = ReplicaPool([Replica("r0", InferenceSession(gated))])
        with Server(pool, max_batch_size=8, max_wait_ms=10.0) as server:
            blocker = server.submit(np.zeros(2, np.float32))
            time.sleep(0.05)  # blocker's batch closes, occupies the replica
            first = server.submit(np.ones(2, np.float32))
            victim = server.submit(np.ones(2, np.float32))
            last = server.submit(np.ones(2, np.float32))
            assert victim.cancel()  # still queued, so cancellable
            release.set()
            blocker.result(timeout=30)
            assert first.result(timeout=30) == pytest.approx(2.0)
            assert last.result(timeout=30) == pytest.approx(2.0)
            assert victim.cancelled()

    def test_metrics_snapshot_and_report(self):
        with Server.build("ode_botnet", "tiny", 2, seed=0,
                          instrument=True) as server:
            x = _samples(4, shape=(3, 32, 32))
            for xi in x:
                server.predict(xi, timeout=60)
            snap = server.metrics()
            report = server.metrics_report()
        assert snap["aggregate"]["requests"] >= 4
        assert set(snap["replicas"]) == {"replica-0", "replica-1"}
        assert "kernels" in next(iter(snap["replicas"].values()))["stats"]
        assert snap["queue"]["admitted"] >= 4
        assert snap["scheduler"]["completed"] >= 4
        assert "=== serve metrics ===" in report
        assert "replica-0" in report
        assert render_report(snap) == report


# ----------------------------------------------------------------------
class TestLoadgen:
    def test_arrival_offsets_deterministic_and_poisson_like(self):
        a = arrival_offsets(100.0, 2.0, seed=7)
        b = arrival_offsets(100.0, 2.0, seed=7)
        c = arrival_offsets(100.0, 2.0, seed=8)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)
        assert np.all(np.diff(a) > 0) and a[-1] < 2.0
        # ~100 Hz * 2 s = ~200 arrivals; loose 5-sigma style bound
        assert 120 < len(a) < 290

    def test_pick_priorities_deterministic(self):
        a = pick_priorities(50, seed=3)
        assert a == pick_priorities(50, seed=3)
        assert set(a) <= {Priority.LOW, Priority.NORMAL, Priority.HIGH}

    def test_run_load_classifies_everything(self):
        pool = ReplicaPool([Replica("r0", _echo_session(delay_s=0.005))])
        with Server(pool, max_batch_size=4, max_wait_ms=1.0,
                    queue_capacity=4, shed_policy="reject") as server:
            offsets = arrival_offsets(2000.0, 0.25, seed=5)
            report = run_load(server, _samples(8), offsets, seed=5,
                              deadline_ms=100.0)
        total = (report.completed + report.deadline_exceeded + report.shed
                 + report.stopped + report.unavailable + report.errors)
        assert total == report.offered == len(offsets)
        assert report.hung == 0
        assert report.errors == 0
        assert report.shed > 0  # 2000/s into a capacity-4 queue must shed
        assert "hung futures: 0" in report.summary()

    def test_overload_bounded_queue_zero_hangs(self):
        # the acceptance scenario: ~2x sustainable load, typed sheds,
        # queue never grows past its bound, every future resolves
        pool = ReplicaPool([Replica("r0", _echo_session(delay_s=0.002))])
        with Server(pool, max_batch_size=1, max_wait_ms=0.1,
                    queue_capacity=8, shed_policy="reject-oldest") as server:
            # capacity ~= 500/s; offer ~1000/s
            offsets = arrival_offsets(1000.0, 0.5, seed=11)
            report = run_load(server, _samples(8), offsets, seed=11)
            snap = server.metrics()
        assert report.hung == 0 and report.errors == 0
        assert snap["queue"]["high_water"] <= 8
        assert report.shed > 0
        assert report.completed > 0


# ----------------------------------------------------------------------
class TestRegistryReducedProfiles:
    def test_every_profile_has_reduced_variant(self):
        bases = [p for p in PROFILES if not p.endswith("-reduced")]
        for base in bases:
            red = reduced_profile(base)
            assert red in PROFILES
            full_steps = PROFILES[base]["odenet"]["steps"]
            assert PROFILES[red]["odenet"]["steps"] == max(1, full_steps // 2)
            assert PROFILES[red]["input_size"] == PROFILES[base]["input_size"]

    def test_reduced_profile_idempotent_and_validates(self):
        assert reduced_profile("tiny-reduced") == "tiny-reduced"
        with pytest.raises(ValueError):
            reduced_profile("nope")

    def test_reduced_model_accepts_full_state_dict(self):
        full = build_model("ode_botnet", profile="tiny", seed=0,
                           inference=True)
        red = build_model("ode_botnet", profile=reduced_profile("tiny"),
                          seed=1, pretrained_state=full.state_dict(),
                          inference=True)
        for (ka, va), (kb, vb) in zip(
            sorted(full.state_dict().items()),
            sorted(red.state_dict().items()),
        ):
            assert ka == kb
            assert np.array_equal(va, vb)


# ----------------------------------------------------------------------
class TestTierLadder:
    """The three-rung degrade ladder: band assignment, per-tier
    counters, shared weights, and static certification."""

    def _request(self, q):
        return Request(np.zeros(2, np.float32), seq=q.next_seq())

    def test_overflow_fills_bands_in_ladder_order(self):
        q = AdmissionQueue(2, "degrade", degrade_headroom=6)
        reqs = [self._request(q) for _ in range(8)]
        for r in reqs:
            assert q.offer(r)
        assert [r.tier for r in reqs] == [
            None, None, "reduced", "reduced", "int8", "int8", "int4", "int4",
        ]
        snap = q.snapshot()
        assert list(snap["tiers"]) == ["reduced", "int8", "int4"]
        assert snap["degraded_by_tier"] == {
            "reduced": 2, "int8": 2, "int4": 2,
        }
        assert snap["degraded_admissions"] == 6

    def test_uneven_headroom_biases_shallow_tiers(self):
        q = AdmissionQueue(1, "degrade", degrade_headroom=4)
        reqs = [self._request(q) for _ in range(5)]
        for r in reqs:
            assert q.offer(r)
        # 4 across 3 rungs: the extra slot goes to the shallowest tier
        assert [r.tier for r in reqs] == [
            None, "reduced", "reduced", "int8", "int4",
        ]

    def test_custom_single_rung_ladder(self):
        q = AdmissionQueue(1, "degrade", degrade_headroom=2,
                           tiers=("int8",))
        reqs = [self._request(q) for _ in range(3)]
        for r in reqs:
            assert q.offer(r)
        assert [r.tier for r in reqs] == [None, "int8", "int8"]
        assert not q.offer(self._request(q))  # hard cap still holds

    def test_request_degraded_backcompat(self):
        req = Request(np.zeros(2, np.float32), seq=0)
        assert req.tier is None and not req.degraded
        req.degraded = True
        assert req.tier == "reduced" and req.degraded
        req.tier = "int4"
        assert req.degraded  # setter does not clobber a deeper tier
        req.degraded = True
        assert req.tier == "int4"
        req.degraded = False
        assert req.tier is None

    def test_resolve_ladder_forms(self):
        from repro.serve import DEFAULT_LADDER, TierSpec, resolve_ladder

        default = resolve_ladder(None)
        assert tuple(t.name for t in default) == DEFAULT_LADDER
        from_text = resolve_ladder("int8, int4")
        assert tuple(t.name for t in from_text) == ("int8", "int4")
        custom = TierSpec("half", qformat="16(8)-12(4)")
        mixed = resolve_ladder(["reduced", custom])
        assert mixed[1] is custom
        with pytest.raises(ValueError, match="unknown tier"):
            resolve_ladder("int2")
        with pytest.raises(ValueError, match="unique"):
            resolve_ladder(("int8", "int8"))
        with pytest.raises(ValueError, match="at least one"):
            resolve_ladder(())

    def test_replica_routes_tiers_and_counts(self):
        full = Replica(
            "r0", _echo_session(scale=1.0),
            tier_sessions={
                "reduced": _echo_session(scale=-1.0),
                "int8": _echo_session(scale=2.0),
            },
        )
        x = np.ones((1, 2), np.float32)
        assert full.run(x)[0, 0] == 2.0
        assert full.run(x, tier="reduced")[0, 0] == -2.0
        assert full.run(x, tier="int8")[0, 0] == 4.0
        # unknown tier falls back to the full session, counted as full
        assert full.run(x, tier="int4")[0, 0] == 2.0
        assert full.run(x, degraded=True)[0, 0] == -2.0  # legacy kwarg
        health = full.health()
        assert health["dispatches"] == 5
        assert health["degraded_dispatches"] == 3
        assert health["dispatches_by_tier"] == {"reduced": 2, "int8": 1}
        assert list(health["tiers"]) == ["reduced", "int8"]
        assert health["weights_version"] == 1
        full.refresh()
        assert full.health()["weights_version"] == 2

    def test_pool_build_ladder_shares_weights(self):
        pool = ReplicaPool.build(
            "ode_botnet", "tiny", 1, tiers=("reduced", "int8"),
        )
        replica = next(iter(pool))
        assert set(replica.tier_sessions) == {"reduced", "int8"}
        # every rung derives from the primary session's weight set
        from repro.fixedpoint import QuantizedPlan

        assert replica.tier_sessions["reduced"].backend == "packed"
        assert isinstance(
            replica.tier_sessions["int8"]._plan, QuantizedPlan
        )
        x = _samples(n=2, shape=(3, 32, 32))
        full_out = replica.run(x)
        int8_out = replica.run(x, tier="int8")
        assert full_out.shape == int8_out.shape
        assert not np.array_equal(full_out, int8_out)

    def test_scheduler_groups_and_counts_by_tier(self):
        replica = Replica(
            "r0", _echo_session(scale=1.0, delay_s=0.02),
            tier_sessions={
                "reduced": _echo_session(scale=-1.0),
                "int8": _echo_session(scale=2.0),
                "int4": _echo_session(scale=4.0),
            },
        )
        with Server(ReplicaPool([replica]), max_batch_size=1,
                    max_wait_ms=0.1, queue_capacity=1,
                    shed_policy="degrade", degrade_headroom=6) as server:
            x = np.ones(2, np.float32)
            futures = [server.submit(x) for _ in range(7)]
            for f in futures:
                f.result(timeout=30)
            snap = server.scheduler.snapshot()
        by_tier = snap["dispatched_by_tier"]
        assert set(by_tier) <= {"full", "reduced", "int8", "int4"}
        assert by_tier["full"] >= 1
        assert sum(by_tier.values()) == 7
        assert snap["degraded_dispatched"] == 7 - by_tier["full"]
        report = render_report(server.metrics())
        assert "dispatched by tier" in report


class TestTierCertification:
    def test_default_ladder_certifies_clean(self):
        from repro.serve import certify_ladder, certify_tier, resolve_ladder

        reports = certify_ladder(None, "ode_botnet", "tiny")
        assert set(reports) == {"full", "reduced", "int8", "int4"}
        assert all(r["ok"] for r in reports.values())
        rung = certify_tier(resolve_ladder(None)[1], "ode_botnet", "tiny")
        assert rung["quantized"] and rung["qformat"] == "8(4)-8(4)"
        assert rung["blocking"] == []

    def test_wide_tier_fails_certification(self):
        from repro.serve import (
            TierCertificationError,
            TierSpec,
            certify_ladder,
            certify_tier,
        )

        wide = TierSpec("wide", qformat="32(16)-24(8)")
        report = certify_tier(wide, "ode_botnet", "tiny")
        assert not report["ok"]
        assert any("48-bit DSP" in d.message for d in report["blocking"])
        with pytest.raises(TierCertificationError) as exc_info:
            certify_ladder(("reduced", wide), "ode_botnet", "tiny")
        assert exc_info.value.tier == "wide"
        assert exc_info.value.diagnostics

    def test_server_build_certifies_and_escape_hatch(self):
        from repro.serve import TierCertificationError, TierSpec

        wide = TierSpec("wide", qformat="32(16)-24(8)")
        with pytest.raises(TierCertificationError):
            Server.build("ode_botnet", "tiny", 1, shed_policy="degrade",
                         tiers=("reduced", wide))
        server = Server.build("ode_botnet", "tiny", 1,
                              shed_policy="degrade", tiers=("reduced", wide),
                              certify=False)
        try:
            assert server.queue.tiers == ("reduced", "wide")
        finally:
            server.close()

    def test_three_rung_soak_bounded_and_attributed(self):
        server = Server.build(
            "ode_botnet", "tiny", 1, shed_policy="degrade",
            queue_capacity=2, degrade_headroom=6,
            max_batch_size=2, max_wait_ms=0.5,
        )
        try:
            size = PROFILES["tiny"]["input_size"]
            samples = _samples(n=8, shape=(3, size, size))
            offsets = arrival_offsets(rate_hz=400.0, duration_s=0.25, seed=3)
            report = run_load(server, samples, offsets, seed=3)
            metrics = server.metrics()
        finally:
            server.close()
        assert report.hung == 0 and report.errors == 0
        assert report.completed >= 1
        bound = server.queue.capacity + server.queue.degrade_headroom
        assert metrics["queue"]["high_water"] <= bound
        assert list(metrics["queue"]["tiers"]) == ["reduced", "int8", "int4"]
        assert set(metrics["queue"]["degraded_by_tier"]) == {
            "reduced", "int8", "int4",
        }
        by_tier = metrics["scheduler"]["dispatched_by_tier"]
        assert sum(by_tier.values()) == report.completed
